"""The native C column kernel: probe, build cache, parity, ejection.

Four layers:

* **toolchain probing** — cached per process, honours the ``REPRO_NATIVE*``
  env knobs, and its decision is stamped into ``describe_native`` /
  generated-module headers;
* **kernel-attached maps** — a :class:`_NativeColumnarMap` must behave
  exactly like the pure :class:`ColumnarMap` (itself pinned against dict),
  across both FFI loaders (cffi and ctypes);
* **the fallback boundary** — any value/key the packed C layout cannot
  represent ejects the map back to the pure class *mid-stream without
  losing entries*: int64 overflow, int-into-float promotion, exotic keys,
  wrong-arity keys (spill), pop/popitem;
* **the executor lane** — ``mode="native"`` engines stay repr-identical
  to compiled/interpreted ones, and ``REPRO_NATIVE=off`` degrades the
  whole lane to pure Python with the reason recorded.

Every kernel-touching test skips (visibly) when the host has no C
toolchain; the fallback-lane tests run everywhere.
"""

import copy
import os
import pickle
import random
from functools import lru_cache

import pytest

from repro.codegen import native
from repro.codegen.native import (
    KernelLib,
    NativeExecutor,
    describe_native,
    kernel_signatures,
    load_kernel,
    probe_toolchain,
    render_kernel_source,
)
from repro.compiler import compile_sql
from repro.runtime import ColumnarMap, DeltaEngine
from repro.runtime.storage import _INT64_MAX, _NativeColumnarMap
from repro.sql.catalog import Catalog

SIGS = frozenset({(1, "q"), (2, "q"), (1, "d")})


def _restore_env(name: str, saved) -> None:
    if saved is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = saved


def _require_toolchain():
    probe = probe_toolchain()
    if not probe.available:
        pytest.skip(f"no C toolchain: {probe.reason}")
    return probe


@lru_cache(maxsize=None)
def _kernel_for(loader: str) -> KernelLib:
    probe = probe_toolchain()
    source = render_kernel_source(SIGS)
    so_path = native._build_shared_object(source, probe)
    if loader == "cffi":
        pytest.importorskip("cffi")
        lib, ffi = native._load_cffi(so_path, SIGS)
    else:
        lib, ffi = native._load_ctypes(so_path, SIGS)
    return KernelLib(loader, lib, ffi, SIGS, so_path)


@pytest.fixture(params=["cffi", "ctypes"])
def kernel(request):
    _require_toolchain()
    return _kernel_for(request.param)


def _attached(kernel, arity=1, vkind="q", items=()):
    m = ColumnarMap(arity, vkind)
    for key, value in items:
        m[key] = value
    assert kernel.attach(m), "attach declined on a conforming map"
    assert type(m) is _NativeColumnarMap
    return m


@lru_cache(maxsize=None)
def _grouped_program():
    catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
    return compile_sql("SELECT a, sum(b) FROM R r GROUP BY a", catalog, name="q")


# ---------------------------------------------------------------------------
# Toolchain probing and the build cache
# ---------------------------------------------------------------------------


class TestToolchainProbe:
    def test_probe_is_cached_per_process(self):
        assert probe_toolchain() is probe_toolchain()

    def test_describe_names_loader_or_reason(self):
        probe = probe_toolchain()
        if probe.available:
            assert probe.loader in ("cffi", "ctypes")
            assert probe.loader in probe.describe()
        else:
            assert "fallback" in probe.describe()

    def test_repro_native_off_disables_backend(self):
        saved = os.environ.get("REPRO_NATIVE")
        os.environ["REPRO_NATIVE"] = "off"
        try:
            probe = probe_toolchain(refresh=True)
            assert not probe.available
            assert "REPRO_NATIVE" in probe.reason
        finally:
            _restore_env("REPRO_NATIVE", saved)
            probe_toolchain(refresh=True)

    def test_build_cache_is_content_addressed(self):
        probe = _require_toolchain()
        source = render_kernel_source(SIGS)
        first = native._build_shared_object(source, probe)
        second = native._build_shared_object(source, probe)
        assert first == second and first.exists()
        other = native._build_shared_object(
            render_kernel_source(frozenset({(3, "q")})), probe
        )
        assert other != first

    def test_describe_native_reports_probe_and_eligibility(self):
        text = describe_native(_grouped_program())
        assert text.startswith("== native kernel ==")
        assert "toolchain:" in text
        assert "native-eligible" in text

    def test_generated_header_stamps_toolchain_note(self):
        from repro.codegen.pygen import generate_module

        program = _grouped_program()
        source = generate_module(
            program,
            columnar=True,
            native_maps=native.native_map_names(program),
            native_note="probe-note-for-test",
        )
        assert "native kernel: probe-note-for-test" in source
        assert "fused column scans" not in source or "columnar storage" in source

    def test_load_kernel_notes_reason_without_eligible_maps(self):
        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        scalar_only = compile_sql("SELECT sum(a) FROM R r", catalog, name="q")
        lib, note = load_kernel(scalar_only)
        assert lib is None
        assert "no native-eligible maps" in note


# ---------------------------------------------------------------------------
# Kernel-attached map parity (both loaders)
# ---------------------------------------------------------------------------


class TestKernelMapParity:
    def test_set_get_delete_add(self, kernel):
        m = _attached(kernel)
        m[(1,)] = 5
        assert m[(1,)] == 5 and (1,) in m and len(m) == 1
        assert m.get((9,), "d") == "d"
        assert m.add((1,), -5) == 0
        assert (1,) not in m and len(m) == 0
        del_target = _attached(kernel, items=[((3,), 4)])
        del del_target[(3,)]
        assert len(del_target) == 0
        with pytest.raises(KeyError):
            del del_target[(3,)]
        with pytest.raises(KeyError):
            _attached(kernel)[(8,)]

    def test_churn_matches_dict_order(self, kernel):
        m, d = _attached(kernel, arity=2), {}
        rng = random.Random(7)
        for _ in range(4000):
            key = (rng.randrange(40), rng.randrange(3))
            if rng.random() < 0.4 and key in d:
                del d[key]
                del m[key]
            else:
                value = rng.randrange(1, 9)
                d[key] = value
                m[key] = value
        assert type(m) is _NativeColumnarMap  # never ejected
        assert list(m.items()) == list(d.items())
        assert list(m) == list(d)
        assert list(m.values()) == list(d.values())
        assert m == d

    def test_migration_carries_existing_entries(self, kernel):
        m = ColumnarMap(1, "q")
        for i in range(200):
            m[(i,)] = i + 1
        for i in range(0, 200, 3):
            m.pop((i,), None)
        expected = list(m.items())
        assert kernel.attach(m)
        assert list(m.items()) == expected

    def test_attach_declines_spilled_and_foreign(self, kernel):
        spilled = ColumnarMap(1, "q")
        spilled["not-a-tuple"] = 1
        assert not kernel.attach(spilled)
        assert type(spilled) is ColumnarMap
        unknown_sig = ColumnarMap(7, "q")
        assert not kernel.attach(unknown_sig)
        assert not kernel.attach({})

    def test_attach_is_idempotent(self, kernel):
        m = _attached(kernel, items=[((1,), 2)])
        assert kernel.attach(m)
        assert m[(1,)] == 2

    def test_float_values_bit_exact(self, kernel):
        import struct

        m = _attached(kernel, vkind="d")
        for i, value in enumerate((0.1 + 0.2, -0.0, 1e-310)):
            m[(i,)] = value
            assert struct.pack("d", m[(i,)]) == struct.pack("d", value)

    def test_clone_stays_native_and_independent(self, kernel):
        m = _attached(kernel, items=[((i,), i + 1) for i in range(50)])
        clone = m.copy()
        assert type(clone) is _NativeColumnarMap
        clone[(99,)] = 1
        assert (99,) not in m and list(m.items())[:3] == [
            ((0,), 1), ((1,), 2), ((2,), 3)
        ]

    def test_pickle_and_deepcopy_ship_pure_maps(self, kernel):
        m = _attached(kernel, items=[((i,), i + 1) for i in range(20)])
        revived = pickle.loads(pickle.dumps(m))
        assert type(revived) is ColumnarMap and not revived.spilled
        assert list(revived.items()) == list(m.items())
        duplicate = copy.deepcopy(m)
        assert list(duplicate.items()) == list(m.items())
        duplicate[(999,)] = 1
        assert (999,) not in m

    def test_storage_bytes_reports_kernel_arena(self, kernel):
        m = _attached(kernel)
        small = m.storage_bytes()
        assert small > 0
        for i in range(5000):
            m[(i,)] = i + 1
        assert m.storage_bytes() > small
        # and the profiler picks the kernel-side number up
        from repro.runtime.profiler import map_memory_bytes

        assert map_memory_bytes({"m": m})["m"] == m.storage_bytes()


# ---------------------------------------------------------------------------
# The fallback boundary: ejection must never lose entries
# ---------------------------------------------------------------------------


class TestEjectionBoundary:
    def test_int64_overflow_set_ejects(self, kernel):
        m = _attached(kernel, items=[((1,), 3)])
        m[(2,)] = _INT64_MAX + 10
        assert type(m) is ColumnarMap
        assert m[(1,)] == 3 and m[(2,)] == _INT64_MAX + 10

    def test_int64_overflow_add_ejects_exact(self, kernel):
        m = _attached(kernel, items=[((1,), _INT64_MAX - 5)])
        assert m.add((1,), 100) == _INT64_MAX + 95
        assert type(m) is ColumnarMap
        assert m[(1,)] == _INT64_MAX + 95

    def test_int_into_float_column_ejects_unboxed(self, kernel):
        m = _attached(kernel, vkind="d", items=[((1,), 2.5)])
        m[(2,)] = 3  # must stay an int, not coerce to 3.0
        assert type(m) is ColumnarMap
        assert type(m[(2,)]) is int and m[(1,)] == 2.5

    def test_exotic_key_part_ejects_then_boxes(self, kernel):
        m = _attached(kernel, items=[((1,), 10)])
        m[("x",)] = 20
        assert type(m) is ColumnarMap and not m.spilled
        assert dict(m) == {(1,): 10, ("x",): 20}

    def test_wrong_arity_key_ejects_then_spills(self, kernel):
        m = _attached(kernel, arity=2, items=[((1, 2), 3)])
        m[(1, 2, 3)] = 4
        assert type(m) is ColumnarMap and m.spilled
        assert dict(m) == {(1, 2): 3, (1, 2, 3): 4}

    def test_pop_and_popitem_eject(self, kernel):
        m = _attached(kernel, items=[((i,), i + 1) for i in range(6)])
        assert m.pop((2,)) == 3
        assert type(m) is ColumnarMap
        n = _attached(kernel, items=[((i,), i + 1) for i in range(6)])
        assert n.popitem() == ((5,), 6)
        assert type(n) is ColumnarMap

    def test_mid_stream_ejection_loses_nothing(self, kernel):
        """A whole-map eject halfway through an add stream must keep every
        prior entry, in insertion order, and keep applying deltas."""
        m, d = _attached(kernel), {}
        for i in range(500):
            delta = (
                _INT64_MAX if i == 250  # overflow: ejects mid-stream
                else (i % 13) - 6
            )
            key = (i % 97,)
            m.add(key, delta)
            cur = d.get(key, 0) + delta
            if cur == 0:
                d.pop(key, None)
            else:
                d[key] = cur
        assert type(m) is ColumnarMap
        assert list(m.items()) == list(d.items())


# ---------------------------------------------------------------------------
# The fused scalar reduction
# ---------------------------------------------------------------------------


class TestReduceScalar:
    def _oracle(self, items, mulpos, predicates, cmul=1):
        total = 0
        ops = {0: "__gt__", 1: "__ge__", 2: "__lt__", 3: "__le__",
               4: "__eq__", 5: "__ne__"}
        for key, value in items:
            if all(
                getattr(float(key[pos]), ops[op])(float(thr))
                for pos, op, thr in predicates
            ):
                term = value * cmul
                for pos in mulpos:
                    term *= key[pos]
                total += term
        return total

    def test_matches_python_loop(self, kernel):
        items = [((i, i % 5), (i % 7) - 3) for i in range(300)]
        items = [(k, v) for k, v in items if v]
        m = _attached(kernel, arity=2, items=items)
        for mulpos, preds, cmul in [
            ((), (), 1),
            ((0,), ((1, 0, 2.0),), 1),       # key1 > 2
            ((0, 1), ((0, 3, 100.0),), -2),  # key0 <= 100
            ((), ((1, 4, 3.0),), 5),         # key1 == 3
            ((1,), ((0, 5, 7.0), (1, 1, 1.0)), 1),
        ]:
            got = m.reduce_scalar(mulpos, preds, cmul)
            assert got == self._oracle(list(m.items()), mulpos, preds, cmul)
            assert type(got) is int

    def test_pure_and_float_maps_decline(self, kernel):
        assert ColumnarMap(1, "q").reduce_scalar((), ()) is None
        floaty = _attached(kernel, vkind="d", items=[((1,), 2.5)])
        assert floaty.reduce_scalar((), ()) is None

    def test_overflow_bails_to_none(self, kernel):
        m = _attached(kernel, items=[((2,), _INT64_MAX - 1), ((3,), 5)])
        assert m.reduce_scalar((), ()) is None  # sum overflows
        assert m.reduce_scalar((0,), ()) is None  # product overflows
        assert m.reduce_scalar((), (), 2) is None  # cmul overflows
        # un-overflowed shapes still compute
        assert m.reduce_scalar((), ((0, 0, 2.5),)) == 5

    def test_filtered_key_beyond_double_window_bails(self, kernel):
        big = (1 << 53) + 1  # not double-exact: comparison would lie
        m = _attached(kernel, items=[((big,), 1)])
        assert m.reduce_scalar((), ((0, 0, 0.0),)) is None
        assert m.reduce_scalar((), ()) == 1  # unfiltered is fine

    def test_threshold_marshalling(self, kernel):
        m = _attached(kernel, items=[((1,), 10), ((3,), 20)])
        assert m.reduce_scalar((), ((0, 0, 2),)) == 20  # int threshold
        assert m.reduce_scalar((), ((0, 0, True),)) == 20  # bool → 1.0
        assert m.reduce_scalar((), ((0, 0, 2.5),)) == 20
        # non-double-exact / non-numeric thresholds decline
        assert m.reduce_scalar((), ((0, 0, (1 << 53) + 1),)) is None
        assert m.reduce_scalar((), ((0, 0, 10 ** 400),)) is None
        assert m.reduce_scalar((), ((0, 0, "x"),)) is None
        # out-of-range cmul declines before touching C
        assert m.reduce_scalar((), (), _INT64_MAX + 1) is None


# ---------------------------------------------------------------------------
# The executor lane
# ---------------------------------------------------------------------------


def _drive(engine, n=400):
    rng = random.Random(3)
    live = []
    for _ in range(n):
        if live and rng.random() < 0.35:
            row = live.pop(rng.randrange(len(live)))
            engine.delete("R", *row)
        else:
            row = (rng.randrange(8), rng.randrange(-50, 50))
            live.append(row)
            engine.insert("R", *row)
    return engine


def _items(maps):
    return {
        name: sorted((repr(k), repr(v)) for k, v in contents.items())
        for name, contents in maps.items()
    }


class TestNativeExecutorLane:
    def test_native_engine_matches_compiled(self):
        _require_toolchain()
        program = _grouped_program()
        nat = _drive(DeltaEngine(program, mode="native"))
        ref = _drive(DeltaEngine(program, mode="compiled"))
        assert nat.native_active
        assert probe_toolchain().version in nat.native_note
        assert _items(nat.maps) == _items(ref.maps)
        assert nat.results() == ref.results()

    def test_deepcopy_preserves_native_lane(self):
        _require_toolchain()
        engine = _drive(DeltaEngine(_grouped_program(), mode="native"), n=60)
        clone = copy.deepcopy(engine)
        assert clone.maps == engine.maps
        _drive(clone, n=60)  # clone keeps processing independently
        assert clone.native_active

    def test_forced_fallback_runs_pure_python(self):
        saved = os.environ.get("REPRO_NATIVE")
        os.environ["REPRO_NATIVE"] = "off"
        try:
            probe_toolchain(refresh=True)
            engine = _drive(DeltaEngine(_grouped_program(), mode="native"))
            assert not engine.native_active
            assert "REPRO_NATIVE" in engine.native_note
            assert all(
                type(c) in (dict, ColumnarMap) for c in engine.maps.values()
            )
        finally:
            _restore_env("REPRO_NATIVE", saved)
            probe_toolchain(refresh=True)
        ref = _drive(DeltaEngine(_grouped_program(), mode="compiled"))
        assert _items(engine.maps) == _items(ref.maps)

    def test_executor_exposes_note_and_signature_set(self):
        program = _grouped_program()
        executor = NativeExecutor(program)
        assert isinstance(executor.native_note, str) and executor.native_note
        sigs = kernel_signatures(program)
        assert all(kind == "q" for _, kind in sigs)
