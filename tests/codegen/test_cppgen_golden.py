"""Golden-file tests pinning the C++ emission on the finance queries.

The C++ back end is a demonstration artifact that is never executed here,
so without these snapshots its regressions would go unnoticed.  The
goldens pin the full rendered text — map declarations, helper prelude,
handler bodies, and the IR optimisations (fused loops, hoisted
invariants) visible in them.

To regenerate after an intentional change::

    PYTHONPATH=src python tests/codegen/test_cppgen_golden.py
"""

from pathlib import Path

import pytest

from repro.codegen.cppgen import generate_cpp
from repro.compiler import compile_sql
from repro.errors import CodegenError
from repro.workloads.finance import (
    FINANCE_QUERIES,
    NONLINEAR_FINANCE,
    finance_catalog,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

# The C++ sketch deliberately declines the non-linear queries (their
# Finalize-maintained auxiliary caches have no C++ rendering); the decline
# itself is pinned below instead of a golden.
LINEAR_FINANCE = sorted(set(FINANCE_QUERIES) - set(NONLINEAR_FINANCE))


def _render(name: str) -> str:
    program = compile_sql(FINANCE_QUERIES[name], finance_catalog(), name=name)
    return generate_cpp(program)


@pytest.mark.parametrize("name", LINEAR_FINANCE)
def test_cpp_matches_golden(name):
    golden = (GOLDEN_DIR / f"{name}.cpp").read_text()
    rendered = _render(name)
    assert rendered == golden, (
        f"cppgen output for {name!r} changed; if intentional, regenerate "
        "with: PYTHONPATH=src python tests/codegen/test_cppgen_golden.py"
    )


@pytest.mark.parametrize("name", LINEAR_FINANCE)
def test_cpp_semantic_shape(name):
    """Faithfulness invariants, independent of the exact golden text."""
    rendered = _render(name)
    assert "if (c == 0) m.erase(k); else m[k] = c;" in rendered  # eviction
    assert "it == m.end() ? 0.0 : it->second" in rendered  # default lookup
    assert rendered.count("{") == rendered.count("}")


def test_vwap_shows_ir_optimisations():
    rendered = _render("vwap")
    # One fused scan of the base-bids map per trigger (insert + delete)
    # instead of two each...
    assert rendered.count("for (const auto& __e1 : m1_base_bids)") == 2
    # ...each with the 0.25 * total threshold hoisted out of it.
    assert rendered.count("auto __h1 =") == 2


@pytest.mark.parametrize("name", sorted(NONLINEAR_FINANCE))
def test_cpp_declines_nonlinear_queries(name):
    """MIN/MAX/DISTINCT queries fail up front with a pointed message,
    never part-way through emission."""
    with pytest.raises(CodegenError, match="non-linear"):
        _render(name)


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in LINEAR_FINANCE:
        (GOLDEN_DIR / f"{name}.cpp").write_text(_render(name))
        print(f"regenerated golden/{name}.cpp")


if __name__ == "__main__":
    main()
