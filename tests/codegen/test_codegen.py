"""Code generator tests: generated Python and C++ artifacts."""

import pytest

from repro.codegen.cppgen import generate_cpp
from repro.codegen.pygen import CompiledExecutor, Emitter, generate_module, map_local
from repro.compiler import compile_sql
from repro.runtime.events import columns_from_rows
from repro.sql.catalog import Catalog

DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
CREATE STREAM bids (broker_id int, price int, volume int);
"""
PAPER_SQL = "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C"


@pytest.fixture
def catalog():
    return Catalog.from_script(DDL)


@pytest.fixture
def program(catalog):
    return compile_sql(PAPER_SQL, catalog)


class TestEmitter:
    def test_indentation_blocks(self):
        emitter = Emitter()
        emitter.line("def f():")
        with emitter.block():
            emitter.line("return 1")
        assert emitter.source() == "def f():\n    return 1\n"

    def test_fresh_names_unique(self):
        emitter = Emitter()
        names = {emitter.fresh() for _ in range(50)}
        assert len(names) == 50


class TestPythonGeneration:
    def test_module_compiles(self, program):
        source = generate_module(program)
        compile(source, "<test>", "exec")  # must be valid Python

    def test_one_function_per_trigger(self, program):
        source = generate_module(program)
        for trigger in program.triggers.values():
            assert f"def {trigger.name}(" in source

    def test_straight_line_updates_use_direct_keys(self, program):
        """The paper's point: keyed updates are dictionary probes, not
        scans.  The insert-into-S handler must not contain any loop."""
        source = generate_module(program)
        body = source.split("def on_insert_s")[1].split("def ")[0]
        assert "for " not in body

    def test_foreach_statements_become_loops(self, program):
        source = generate_module(program)
        body = source.split("def on_insert_t")[1].split("def ")[0]
        assert "for " in body  # the paper's foreach over q1[b,c]

    def test_comments_document_statements(self, program):
        source = generate_module(program)
        assert "# q_q_sum_0[] +=" in source

    def test_executor_binds_and_runs(self, program):
        executor = CompiledExecutor(program)
        maps = {name: {} for name in program.maps}
        executor.bind(maps)
        trigger = program.trigger_for("R", 1)
        executor.execute(trigger, (2, 10), maps)
        # qA[b] picked up the insert.
        values = [m for m in maps.values() if m]
        assert values

    def test_map_local_naming(self):
        assert map_local("q") == "_m_q"

    def test_comparison_guards_short_circuit(self, catalog):
        program = compile_sql(
            "SELECT sum(volume) FROM bids WHERE price > 100", catalog
        )
        source = generate_module(program)
        assert "if ev_bids_price > 100:" in source

    def test_batch_variant_per_trigger(self, program):
        source = generate_module(program)
        for trigger in program.triggers.values():
            assert f"def {trigger.name}_batch(__cols" in source

    def test_batch_variant_iterates_column_lists(self, program):
        """The batch row loop walks the columnar batch's parallel lists
        (only the columns the body reads), not row tuples."""
        source = generate_module(program)
        trigger = program.trigger_for("R", 1)
        body = source.split(f"def {trigger.name}_batch")[1].split("\ndef ")[0]
        assert " in zip(__cols[" in body or " in __cols[" in body

    def test_batch_executor_matches_per_event(self, program):
        per_event = CompiledExecutor(program)
        batched = CompiledExecutor(program)
        maps_a = {name: {} for name in program.maps}
        maps_b = {name: {} for name in program.maps}
        per_event.bind(maps_a)
        batched.bind(maps_b)
        trigger = program.trigger_for("R", 1)
        rows = [(2, 10), (3, 10), (2, 10)]
        for row in rows:
            per_event.execute(trigger, row, maps_a)
        batched.execute_batch(trigger, columns_from_rows(rows), maps_b)
        assert maps_a == maps_b

    def test_independent_trigger_accumulates_batch_delta(self, catalog):
        """A scalar aggregate whose trigger never reads its own writes
        accumulates the batch delta locally and applies it once."""
        program = compile_sql("SELECT sum(volume) FROM bids", catalog)
        source = generate_module(program)
        body = source.split("def on_insert_bids_batch")[1].split("\ndef ")[0]
        assert "__b0 = 0" in body
        assert "__b0 +=" in body

    def test_self_reading_trigger_restates_second_order(self, catalog):
        """vwap-style triggers read the maps they maintain; the batch body
        accumulates the first-order statements per row, then clears and
        restates the order-2 targets once per batch (delta-of-delta
        absorption) instead of re-running the full body per row."""
        program = compile_sql(
            "SELECT sum(b.volume) FROM bids b "
            "WHERE b.volume > 0.5 * (SELECT sum(b1.volume) FROM bids b1)",
            catalog,
        )
        source = generate_module(program)
        body = source.split("def on_insert_bids_batch")[1].split("\ndef ")[0]
        root = program.slot_maps["q"][0]
        assert f"_m_{root}.clear()" in body
        # The restate scan runs after (outside) the row loop: dedented one
        # level relative to the accumulating row statements.
        assert "    _m_" in body


class TestCppGeneration:
    def test_declares_every_map(self, program):
        source = generate_cpp(program)
        for name in program.maps:
            assert f" {name};" in source

    def test_handlers_present(self, program):
        source = generate_cpp(program)
        assert "void on_insert_r(" in source
        assert "void on_delete_t(" in source

    def test_keyed_update_shape(self, program):
        """Updates go through the zero-evicting _apply helper, so the C++
        rendering shares the Python back end's eviction semantics."""
        source = generate_cpp(program)
        root = program.slot_maps["q"][0]
        assert f"_apply({root}, std::tuple<>{{}}," in source
        assert "if (c == 0) m.erase(k); else m[k] = c;" in source

    def test_string_literals_escaped(self, catalog):
        catalog2 = Catalog.from_script(
            "CREATE STREAM n (name varchar(10), v int)"
        )
        program = compile_sql(
            "SELECT sum(v) FROM n WHERE name = 'O''Neil'", catalog2
        )
        source = generate_cpp(program)
        assert 'std::string("O\'Neil")' in source

    def test_balanced_braces(self, program):
        source = generate_cpp(program)
        assert source.count("{") == source.count("}")


class TestGeneratedSemantics:
    """Differential micro-tests pinning down generated-code edge cases."""

    def test_zero_entries_are_evicted(self, catalog):
        from repro.runtime import DeltaEngine

        program = compile_sql(
            "SELECT broker_id, sum(volume) FROM bids GROUP BY broker_id", catalog
        )
        engine = DeltaEngine(program)
        engine.insert("bids", 1, 10, 5)
        engine.delete("bids", 1, 10, 5)
        assert engine.total_entries() == 0

    def test_self_join_statements_merge_with_coefficient(self, catalog):
        """The two symmetric delta terms of a self-join merge into one
        statement scaled by 2."""
        program = compile_sql(
            "SELECT sum(b1.volume * b2.volume) FROM bids b1, bids b2 "
            "WHERE b1.broker_id = b2.broker_id",
            catalog,
        )
        trigger = program.trigger_for("bids", 1)
        assert any("2 *" in repr(s.rhs) for s in trigger.statements)

    def test_buffered_trigger_generation(self, catalog):
        """A correlated EXISTS produces a map whose maintenance reads its
        own pre-state: the generated trigger must use the two-phase
        pending buffer."""
        catalog2 = Catalog.from_script(
            "CREATE STREAM bids (broker_id int, price int, volume int);"
            "CREATE STREAM asks (broker_id int, price int, volume int);"
        )
        program = compile_sql(
            "SELECT sum(b.volume) FROM bids b WHERE EXISTS "
            "(SELECT a.broker_id FROM asks a WHERE a.price <= b.price)",
            catalog2,
        )
        source = generate_module(program)
        assert "__pending" in source

    def test_division_helper_guards_zero(self, catalog):
        program = compile_sql("SELECT avg(price) FROM bids", catalog)
        source = generate_module(program)
        namespace = {"MAPS": {name: {} for name in program.maps}}
        exec(compile(source, "<t>", "exec"), namespace)
        assert namespace["_div"](1, 0) == 0
        assert namespace["_div"](6, 3) == 2
