"""Unit tests for input/output variable analysis."""

import pytest

from repro.errors import SchemaError
from repro.algebra.expr import (
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Lift,
    MapRef,
    Rel,
    Var,
    add,
    mul,
    neg,
)
from repro.algebra.schema import (
    free_vars,
    input_vars,
    is_scalar,
    output_vars,
    schema_of,
    validate_closed,
)


def rel(name, *vars_):
    return Rel(name, tuple(Var(v) for v in vars_))


class TestLeafSchemas:
    def test_const_has_empty_schema(self):
        assert schema_of(Const(5)) == ((), ())

    def test_var_is_an_input(self):
        assert schema_of(Var("x")) == (("x",), ())

    def test_rel_outputs_its_vars_in_order(self):
        assert schema_of(rel("R", "a", "b")) == ((), ("a", "b"))

    def test_rel_constant_args_bind_nothing(self):
        r = Rel("R", (Var("a"), Const(3)))
        assert schema_of(r) == ((), ("a",))

    def test_rel_duplicate_var_outputs_once(self):
        r = Rel("R", (Var("a"), Var("a")))
        assert schema_of(r) == ((), ("a",))

    def test_mapref_behaves_like_rel(self):
        m = MapRef("q", (Var("k"),))
        assert schema_of(m) == ((), ("k",))


class TestComposite:
    def test_cmp_inputs_are_all_operand_vars(self):
        c = Cmp("<", Var("x"), Var("y"))
        assert schema_of(c) == (("x", "y"), ())

    def test_div_is_scalar_with_inputs(self):
        d = Div(Var("x"), Const(2))
        assert schema_of(d) == (("x",), ())

    def test_mul_left_to_right_binding(self):
        e = mul(rel("R", "a", "b"), rel("S", "b", "c"), Var("a"))
        ins, outs = schema_of(e)
        assert ins == ()
        assert outs == ("a", "b", "c")

    def test_mul_var_before_binder_is_input(self):
        e = mul(Var("a"), rel("R", "a", "b"))
        ins, outs = schema_of(e)
        assert ins == ("a",)
        # "a" is consumed as an input first; R then binds it.
        assert "b" in outs

    def test_add_common_outputs_only(self):
        e = add(rel("R", "a", "b"), rel("S", "a", "c"))
        ins, outs = schema_of(e)
        assert outs == ("a",)
        assert set(ins) == {"b", "c"}

    def test_neg_passes_schema_through(self):
        e = neg(rel("R", "a", "b"))
        assert schema_of(e) == ((), ("a", "b"))

    def test_exists_passes_schema_through(self):
        e = Exists(rel("R", "a", "b"))
        assert schema_of(e) == ((), ("a", "b"))

    def test_lift_outputs_its_var(self):
        e = Lift("x", Var("y"))
        assert schema_of(e) == (("y",), ("x",))

    def test_lift_body_outputs_become_inputs(self):
        e = Lift("x", AggSum((), rel("R", "a")))
        assert schema_of(e) == ((), ("x",))


class TestAggSum:
    def test_groups_are_the_outputs(self):
        e = AggSum(("b",), mul(rel("S", "b", "c"), Var("c")))
        assert schema_of(e) == ((), ("b",))

    def test_group_var_not_produced_raises(self):
        with pytest.raises(SchemaError):
            schema_of(AggSum(("z",), rel("S", "b", "c")))

    def test_body_inputs_propagate(self):
        e = AggSum((), mul(rel("S", "b", "c"), Var("x")))
        assert schema_of(e) == (("x",), ())

    def test_input_group_var_stays_input(self):
        # The body reads b (bound by context); grouping by it is a no-op.
        e = AggSum(("b",), mul(Var("b"), Lift("b2", Var("b"))))
        ins, outs = schema_of(e)
        assert ins == ("b",)
        assert outs == ()


class TestHelpers:
    def test_free_vars_inputs_then_outputs(self):
        e = mul(Var("x"), rel("R", "a"))
        assert free_vars(e) == ("x", "a")

    def test_input_output_projections(self):
        e = Cmp("=", Var("x"), Const(1))
        assert input_vars(e) == ("x",)
        assert output_vars(e) == ()

    def test_is_scalar_depends_on_bound(self):
        e = rel("R", "a")
        assert not is_scalar(e)
        assert is_scalar(e, bound=("a",))

    def test_validate_closed_accepts_allowed_inputs(self):
        e = mul(Var("k"), rel("R", "a"))
        validate_closed(e, allowed=("k",))

    def test_validate_closed_rejects_stray_inputs(self):
        with pytest.raises(SchemaError):
            validate_closed(Var("zz"))
