"""Simplification tests: rule-by-rule checks plus semantic preservation."""

from hypothesis import given, settings

from repro.algebra.expr import (
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Lift,
    Mul,
    Rel,
    Var,
    ONE,
    ZERO,
    add,
    mul,
    neg,
)
from repro.algebra.delta import event_for, delta
from repro.algebra.eval import eval_expr, gmr_equal
from repro.algebra.simplify import monomials, normalize, simplify

from tests.checks import align_rows, apply_event, assert_equivalent_results
from tests.strategies import closed_queries, databases, events


def rel(name, *vars_):
    return Rel(name, tuple(Var(v) for v in vars_))


class TestNormalize:
    def test_distributes_products_over_sums(self):
        e = mul(add(Var("x"), Var("y")), Var("z"))
        n = normalize(e)
        assert n == add(mul(Var("x"), Var("z")), mul(Var("y"), Var("z")))

    def test_folds_constants(self):
        e = mul(Const(2), Const(3), Var("x"))
        assert normalize(e) == mul(Const(6), Var("x"))

    def test_cancels_identical_monomials(self):
        e = add(Var("x"), neg(Var("x")))
        assert normalize(e) == ZERO

    def test_combines_coefficients(self):
        e = add(mul(Const(2), Var("x")), Var("x"))
        assert normalize(e) == mul(Const(3), Var("x"))

    def test_monomials_helper(self):
        e = add(mul(Const(2), Var("x")), neg(Var("y")))
        assert monomials(e) == [(2, (Var("x"),)), (-1, (Var("y"),))]


class TestConstantFolding:
    def test_cmp_of_constants_folds(self):
        assert simplify(mul(Cmp("<", Const(1), Const(2)), Var("x")), ["x"]) == Var("x")
        assert simplify(mul(Cmp(">", Const(1), Const(2)), Var("x")), ["x"]) == ZERO

    def test_cmp_identical_terms(self):
        x = Var("x")
        assert simplify(mul(Cmp("=", x, x), Var("x")), ["x"]) == Var("x")
        assert simplify(mul(Cmp("!=", x, x), Var("x")), ["x"]) == ZERO

    def test_div_folding(self):
        assert simplify(Div(Const(6), Const(3)), []) == Const(2.0)
        assert simplify(Div(Var("x"), Const(1)), ["x"]) == Var("x")
        assert simplify(Div(Var("x"), Const(0)), ["x"]) == ZERO

    def test_exists_of_constant(self):
        assert simplify(mul(Exists(Const(5)), Var("x")), ["x"]) == Var("x")
        assert simplify(Exists(ZERO), []) == ZERO


class TestLiftRules:
    def test_unification_into_relation_args(self):
        # AggSum sums over a,b: the lifts pin them to the event params.
        e = AggSum((), mul(Lift("a", Var("a0")), Lift("b", Var("b0")), rel("R", "a", "b")))
        s = simplify(e, ["a0", "b0"])
        assert s == Rel("R", (Var("a0"), Var("b0")))

    def test_lift_kept_when_variable_is_grouped(self):
        e = AggSum(("b",), mul(Lift("b", Var("b0")), Var("b")))
        s = simplify(e, ["b0"])
        # b is a required output: the lift must survive (as the key binding).
        assert any(isinstance(f, Lift) for f in ([s] if isinstance(s, Lift) else getattr(s, "factors", [])))

    def test_bound_lift_becomes_equality(self):
        # b is bound by R before the lift: it degenerates to a filter and the
        # equality then propagates into R's argument.
        e = AggSum((), mul(rel("R", "a", "b"), Lift("b", Var("b0"))))
        s = simplify(e, ["b0"])
        assert s == AggSum((), Rel("R", (Var("a"), Var("b0"))))

    def test_unused_summed_lift_drops(self):
        e = AggSum((), mul(Lift("x", AggSum((), rel("S", "p", "q"))), Var("y0")))
        s = simplify(e, ["y0"])
        assert s == Var("y0")

    def test_double_lift_same_var(self):
        # (x ^= 1) * (x ^= 2) has an empty result; via substitution the
        # second lift becomes {1 = 2} = 0.
        e = AggSum((), mul(Lift("x", Const(1)), Lift("x", Const(2))))
        assert simplify(e, []) == ZERO

    def test_double_lift_consistent(self):
        e = AggSum((), mul(Lift("x", Const(1)), Lift("x", Const(1))))
        assert simplify(e, []) == ONE


class TestEqualityPropagation:
    def test_filter_pushes_into_atom(self):
        e = AggSum((), mul(rel("R", "a", "b"), Cmp("=", Var("b"), Var("b0")), Var("a")))
        s = simplify(e, ["b0"])
        assert s == AggSum((), mul(Rel("R", (Var("a"), Var("b0"))), Var("a")))

    def test_constant_filter_pushes_into_atom(self):
        e = AggSum((), mul(rel("R", "a", "b"), Cmp("=", Var("b"), Const(3)), Var("a")))
        s = simplify(e, [])
        assert s == AggSum((), mul(Rel("R", (Var("a"), Const(3))), Var("a")))

    def test_no_propagation_for_grouped_var(self):
        # b is a group output; replacing it would change the result schema.
        e = AggSum(("b",), mul(rel("R", "a", "b"), Cmp("=", Var("b"), Var("b0"))))
        s = simplify(e, ["b0"])
        assert "b" in repr(s)


class TestAggSumRules:
    def test_scalar_hoisting(self):
        e = AggSum((), mul(Var("a0"), rel("S", "b", "c")))
        s = simplify(e, ["a0"])
        assert s == mul(AggSum((), rel("S", "b", "c")), Var("a0"))

    def test_join_elimination_via_factorisation(self):
        # The paper's insert-into-S step: independent components split.
        e = AggSum((), mul(rel("R", "a"), rel("T", "d"), Var("a"), Var("d")))
        s = simplify(e, [])
        assert s == mul(
            AggSum((), mul(rel("R", "a"), Var("a"))),
            AggSum((), mul(rel("T", "d"), Var("d"))),
        )

    def test_shared_group_var_does_not_merge_components(self):
        e = AggSum(("k",), mul(rel("R", "k", "x"), rel("S", "k", "y")))
        s = simplify(e, [])
        assert isinstance(s, Mul)
        assert all(isinstance(f, AggSum) for f in s.factors)

    def test_aggsum_collapses_when_nothing_summed(self):
        e = AggSum(("a", "b"), rel("R", "a", "b"))
        assert simplify(e, []) == rel("R", "a", "b")

    def test_aggsum_of_zero(self):
        assert simplify(AggSum((), ZERO), []) == ZERO

    def test_aggsum_distributes_over_sums(self):
        e = AggSum((), add(mul(rel("R", "a", "b"), Var("a")), mul(rel("S", "b", "c"), Var("c"))))
        s = simplify(e, [])
        expected = add(
            AggSum((), mul(rel("R", "a", "b"), Var("a"))),
            AggSum((), mul(rel("S", "b", "c"), Var("c"))),
        )
        assert s == expected

    def test_coefficient_hoists_out(self):
        e = AggSum((), mul(Const(4), rel("R", "a", "b")))
        s = simplify(e, [])
        assert s == mul(Const(4), AggSum((), rel("R", "a", "b")))


class TestCancellation:
    def test_finite_difference_cancels_when_inner_delta_zero(self):
        body = AggSum((), rel("S", "x", "y"))
        e = add(Lift("n", add(body, ZERO)), neg(Lift("n", body)))
        assert simplify(e, []) == ZERO

    def test_paper_deltas(self):
        """End-to-end: the three level-1 deltas of the paper's example."""
        q = AggSum(
            (),
            mul(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d"), Var("a"), Var("d")),
        )
        ev = event_for("S", ("b", "c"), 1)
        s = simplify(delta(q, ev), ev.params)
        # Join elimination: product of two independent aggregates.
        assert isinstance(s, Mul)
        aggs = [f for f in s.factors if isinstance(f, AggSum)]
        assert len(aggs) == 2
        reprs = repr(s)
        assert "R(" in reprs and "T(" in reprs and "S(" not in reprs


def _env_for(expr_bound, values=(1, 2)):
    return {name: values[i % len(values)] for i, name in enumerate(expr_bound)}


class TestSemanticPreservation:
    @settings(max_examples=150, deadline=None)
    @given(query=closed_queries(), db=databases())
    def test_simplify_preserves_closed_query_semantics(self, query, db):
        s = simplify(query)
        cols_a, rows_a = eval_expr(query, {}, db)
        cols_b, rows_b = eval_expr(s, {}, db)
        assert_equivalent_results(
            cols_a, rows_a, cols_b, rows_b, f"for {query!r} vs {s!r}"
        )

    @settings(max_examples=150, deadline=None)
    @given(query=closed_queries(), db=databases(), event=events())
    def test_simplified_delta_still_satisfies_invariant(self, query, db, event):
        from repro.algebra.eval import gmr_add

        name, sign, values = event
        ev = event_for(name, tuple(f"c{i}" for i in range(len(values))), sign)
        env = dict(zip(ev.params, values))
        d = simplify(delta(query, ev), ev.params)

        before_cols, before = eval_expr(query, {}, db)
        _, after = eval_expr(query, {}, apply_event(db, name, sign, values))
        delta_cols, change = eval_expr(d, env, db)
        if change:
            change = align_rows(delta_cols, change, before_cols)
        assert gmr_equal(after, gmr_add(before, change)), (
            f"simplified delta wrong for {query!r} / {sign:+d}{name}{values}: "
            f"raw={delta(query, ev)!r} simplified={d!r}"
        )
