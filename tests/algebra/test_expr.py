"""Unit tests for calculus expression nodes and structural utilities."""

import pytest

from repro.errors import AlgebraError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Exists,
    Lift,
    MapRef,
    Mul,
    Rel,
    Var,
    ONE,
    ZERO,
    add,
    contains_relation,
    maps_in,
    mul,
    neg,
    relations_in,
    rename_vars,
    substitute,
    walk,
    FreshNamer,
)


class TestSmartConstructors:
    def test_add_flattens_nested_adds(self):
        e = add(Var("x"), add(Var("y"), Var("z")))
        assert isinstance(e, Add)
        assert len(e.terms) == 3

    def test_add_drops_zero(self):
        assert add(Var("x"), ZERO) == Var("x")

    def test_add_of_nothing_is_zero(self):
        assert add() == ZERO

    def test_add_single_term_unwraps(self):
        assert add(Var("x")) == Var("x")

    def test_mul_flattens_nested_muls(self):
        e = mul(Var("x"), mul(Var("y"), Var("z")))
        assert isinstance(e, Mul)
        assert len(e.factors) == 3

    def test_mul_by_zero_annihilates(self):
        assert mul(Var("x"), ZERO, Var("y")) == ZERO

    def test_mul_drops_one(self):
        assert mul(ONE, Var("x")) == Var("x")

    def test_mul_of_nothing_is_one(self):
        assert mul() == ONE

    def test_neg_folds_constants(self):
        assert neg(Const(3)) == Const(-3)

    def test_neg_cancels_double_negation(self):
        assert neg(neg(Var("x"))) == Var("x")

    def test_operator_sugar(self):
        x, y = Var("x"), Var("y")
        assert x + y == add(x, y)
        assert x * y == mul(x, y)
        assert x - y == add(x, neg(y))
        assert -x == neg(x)
        assert 2 * x == mul(Const(2), x)

    def test_coercion_rejects_unknown_types(self):
        with pytest.raises(AlgebraError):
            Var("x") * object()


class TestNodeInvariants:
    def test_rel_rejects_non_term_args(self):
        with pytest.raises(AlgebraError):
            Rel("R", (mul(Var("x"), Var("y")),))

    def test_mapref_rejects_non_term_args(self):
        with pytest.raises(AlgebraError):
            MapRef("m", (Cmp("=", Var("x"), Const(1)),))

    def test_cmp_rejects_unknown_operator(self):
        with pytest.raises(AlgebraError):
            Cmp("<>", Var("x"), Var("y"))

    def test_structural_equality_and_hash(self):
        e1 = mul(Rel("R", (Var("a"),)), Var("a"))
        e2 = mul(Rel("R", (Var("a"),)), Var("a"))
        assert e1 == e2
        assert hash(e1) == hash(e2)
        assert e1 != mul(Rel("R", (Var("b"),)), Var("b"))

    def test_repr_is_readable(self):
        e = AggSum(("b",), mul(Rel("S", (Var("b"), Var("c"))), Var("c")))
        assert repr(e) == "AggSum([b], S(b,c) * c)"


class TestTraversal:
    def test_walk_visits_every_node(self):
        e = add(mul(Rel("R", (Var("a"),)), Var("a")), Exists(Rel("S", ())))
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds.count("Rel") == 2
        assert "Exists" in kinds

    def test_relations_in(self):
        e = AggSum((), mul(Rel("R", (Var("a"),)), MapRef("m", (Var("a"),))))
        assert relations_in(e) == {"R"}
        assert maps_in(e) == {"m"}

    def test_contains_relation_named(self):
        e = Lift("x", AggSum((), Rel("T", (Var("c"),))))
        assert contains_relation(e, "T")
        assert not contains_relation(e, "R")
        assert contains_relation(e)


class TestRenameAndSubstitute:
    def test_rename_binders_and_uses(self):
        e = AggSum(("b",), mul(Rel("S", (Var("b"), Var("c"))), Var("c")))
        renamed = rename_vars(e, {"b": "k0", "c": "k1"})
        assert renamed == AggSum(
            ("k0",), mul(Rel("S", (Var("k0"), Var("k1"))), Var("k1"))
        )

    def test_rename_lift_binder(self):
        e = Lift("x", Var("y"))
        assert rename_vars(e, {"x": "z"}) == Lift("z", Var("y"))

    def test_substitute_into_rel_args(self):
        e = Rel("R", (Var("a"), Var("b")))
        out = substitute(e, {"b": Const(7)})
        assert out == Rel("R", (Var("a"), Const(7)))

    def test_substitute_skips_lift_binder_but_not_body(self):
        e = Lift("x", Var("y"))
        assert substitute(e, {"y": Const(2)}) == Lift("x", Const(2))

    def test_substitute_pinned_lift_becomes_equality(self):
        e = Lift("x", Var("y"))
        out = substitute(e, {"x": Const(3)})
        assert out == Cmp("=", Const(3), Var("y"))

    def test_substitute_pins_aggsum_group_var(self):
        e = AggSum(("b",), Rel("S", (Var("b"), Var("c"))))
        out = substitute(e, {"b": Const(5)})
        assert out == AggSum((), Rel("S", (Const(5), Var("c"))))

    def test_substitute_renames_aggsum_group_var(self):
        e = AggSum(("b",), Rel("S", (Var("b"), Var("c"))))
        out = substitute(e, {"b": Var("k")})
        assert out == AggSum(("k",), Rel("S", (Var("k"), Var("c"))))


class TestFreshNamer:
    def test_fresh_names_are_distinct(self):
        namer = FreshNamer("t")
        names = {namer.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_reserved_names_are_skipped(self):
        namer = FreshNamer("x")
        namer.reserve(["x_1", "x_2"])
        assert namer.fresh() == "x_3"

    def test_hint_overrides_prefix(self):
        namer = FreshNamer("v")
        assert namer.fresh("price").startswith("price_")
