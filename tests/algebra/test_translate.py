"""Translation tests: SQL -> calculus, checked against the evaluator."""

import pytest

from repro.algebra.eval import eval_expr, eval_scalar
from repro.algebra.expr import AggSum, relations_in
from repro.algebra.translate import (
    RBin,
    RGroup,
    RSlot,
    eval_result,
    translate_sql,
)
from repro.sql.catalog import Catalog


@pytest.fixture
def catalog():
    return Catalog.from_script(
        """
        CREATE STREAM R (A int, B int);
        CREATE STREAM S (B int, C int);
        CREATE STREAM T (C int, D int);
        CREATE STREAM bids (broker_id int, price int, volume int);
        CREATE STREAM asks (broker_id int, price int, volume int);
        CREATE TABLE nation (n_nationkey int, n_name varchar(25), n_regionkey int);
        """
    )


@pytest.fixture
def db():
    return {
        "R": {(1, 10): 1, (2, 20): 1},
        "S": {(10, 100): 1, (20, 200): 1, (20, 300): 1},
        "T": {(100, 5): 1, (200, 7): 1, (300, 11): 1},
        "bids": {(1, 100, 10): 1, (1, 101, 20): 1, (2, 99, 5): 1},
        "asks": {(1, 102, 8): 1, (2, 100, 12): 1, (3, 103, 4): 1},
        "nation": {(0, "FRANCE", 1): 1, (1, "KENYA", 0): 1},
    }


class TestPaperQuery:
    def test_structure(self, catalog):
        tq = translate_sql(
            "SELECT sum(r.A * t.D) FROM R r, S s, T t "
            "WHERE r.B = s.B AND s.C = t.C",
            catalog,
        )
        spec = tq.aggregates[0]
        assert spec.kind == "sum"
        assert isinstance(spec.expr, AggSum)
        assert spec.expr.group == ()
        assert relations_in(spec.expr) == {"R", "S", "T"}
        # Equijoins are unified: no residual Cmp factors.
        assert "{" not in repr(spec.expr)

    def test_value(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(r.A * t.D) FROM R r, S s, T t "
            "WHERE r.B = s.B AND s.C = t.C",
            catalog,
        )
        # 1*5 (b=10,c=100) + 2*7 + 2*11 = 5 + 14 + 22 = 41
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 41

    def test_scalar_query_has_no_hidden_count(self, catalog):
        tq = translate_sql(
            "SELECT sum(r.A * t.D) FROM R r, S s, T t "
            "WHERE r.B = s.B AND s.C = t.C",
            catalog,
        )
        assert tq.count_slot is None
        assert len(tq.aggregates) == 1

    def test_grouped_query_gets_hidden_count(self, catalog, db):
        tq = translate_sql(
            "SELECT broker_id, sum(volume) FROM bids GROUP BY broker_id",
            catalog,
        )
        assert tq.count_slot is not None
        count = tq.aggregates[tq.count_slot]
        _, rows = eval_expr(count.expr, {}, db)
        assert rows == {(1,): 2, (2,): 1}


class TestGroupByAndArithmetic:
    def test_group_by_value(self, catalog, db):
        tq = translate_sql(
            "SELECT broker_id, sum(price * volume) FROM bids GROUP BY broker_id",
            catalog,
            name="pv",
        )
        spec = next(s for s in tq.aggregates if s.name != "__count")
        cols, rows = eval_expr(spec.expr, {}, db)
        assert rows == {(1,): 100 * 10 + 101 * 20, (2,): 99 * 5}

    def test_sum_difference_item(self, catalog, db):
        tq = translate_sql(
            "SELECT b.broker_id, sum(a.volume) - sum(b.volume) "
            "FROM bids b, asks a WHERE b.broker_id = a.broker_id "
            "GROUP BY b.broker_id",
            catalog,
        )
        item = tq.items[1]
        assert isinstance(item.result, RBin) and item.result.op == "-"
        slots = [eval_expr(s.expr, {}, db)[1] for s in tq.aggregates]
        # broker 1: bids (10+20), ask volume 8 joined against 2 bids -> 16.
        key = (1,)
        values = [s.get(key, 0) for s in slots]
        assert eval_result(item.result, key, values) == 16 - 30

    def test_constant_pinning(self, catalog):
        tq = translate_sql(
            "SELECT sum(n_nationkey) FROM nation WHERE n_name = 'FRANCE'",
            catalog,
        )
        spec = tq.aggregates[0]
        atom = next(
            n for n in [spec.expr.body] if True
        )
        assert "'FRANCE'" in repr(spec.expr)
        assert "{" not in repr(spec.expr)  # pinned, not filtered

    def test_contradictory_pins_yield_empty(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(n_nationkey) FROM nation "
            "WHERE n_name = 'FRANCE' AND n_name = 'KENYA'",
            catalog,
        )
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 0


class TestAggregateExpansion:
    def test_avg_becomes_sum_over_count(self, catalog, db):
        tq = translate_sql("SELECT avg(price) FROM bids", catalog)
        item = tq.items[0]
        assert isinstance(item.result, RBin) and item.result.op == "/"
        slots = [eval_scalar(s.expr, {}, db) for s in tq.aggregates]
        assert eval_result(item.result, (), slots) == (100 + 101 + 99) / 3

    def test_count_star(self, catalog, db):
        tq = translate_sql("SELECT count(*) FROM bids", catalog)
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 3
        # count(*) doubles as the hidden count slot.
        assert tq.count_slot == 0
        assert len(tq.aggregates) == 1

    def test_min_occurrence_map(self, catalog, db):
        tq = translate_sql("SELECT min(price) FROM bids", catalog)
        spec = tq.aggregates[0]
        assert spec.kind == "min"
        assert spec.value_var is not None
        cols, rows = eval_expr(spec.expr, {}, db)
        assert cols == (spec.value_var,)
        assert rows == {(100,): 1, (101,): 1, (99,): 1}

    def test_max_grouped(self, catalog, db):
        tq = translate_sql(
            "SELECT broker_id, max(volume) FROM bids GROUP BY broker_id", catalog
        )
        spec = next(s for s in tq.aggregates if s.kind == "max")
        cols, rows = eval_expr(spec.expr, {}, db)
        assert rows == {(1, 10): 1, (1, 20): 1, (2, 5): 1}


class TestPredicates:
    def test_or_predicate(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(volume) FROM bids WHERE price = 100 OR price = 99",
            catalog,
        )
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 15

    def test_not_predicate(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(volume) FROM bids WHERE NOT price = 100", catalog
        )
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 25

    def test_between(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(volume) FROM bids WHERE price BETWEEN 99 AND 100",
            catalog,
        )
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 15

    def test_exists_correlated(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(b.volume) FROM bids b WHERE EXISTS "
            "(SELECT a.price FROM asks a WHERE a.broker_id = b.broker_id)",
            catalog,
        )
        # brokers 1 and 2 have asks; broker 3 doesn't bid. 10+20+5 = 35.
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 35

    def test_not_in_subquery(self, catalog, db):
        tq = translate_sql(
            "SELECT sum(b.volume) FROM bids b WHERE b.broker_id NOT IN "
            "(SELECT a.broker_id FROM asks a WHERE a.volume > 10)",
            catalog,
        )
        # asks with volume>10: broker 2. bids not broker 2: 10+20 = 30.
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 30

    def test_scalar_subquery_vwap_shape(self, catalog, db):
        tq = translate_sql(
            """
            SELECT sum(b.price * b.volume) FROM bids b
            WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)
            """,
            catalog,
        )
        # total volume 35; threshold 8.75; qualifying bids: v=10, v=20.
        assert eval_scalar(tq.aggregates[0].expr, {}, db) == 100 * 10 + 101 * 20


class TestResultEval:
    def test_division_by_zero_convention(self):
        expr = RBin("/", RSlot(0), RSlot(1))
        assert eval_result(expr, (), [5, 0]) == 0

    def test_group_projection(self):
        expr = RGroup(1)
        assert eval_result(expr, ("x", "y"), []) == "y"
