"""Unit tests for the GMR reference evaluator."""

import pytest

from repro.errors import AlgebraError, SchemaError
from repro.algebra.expr import (
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Lift,
    Rel,
    Var,
    add,
    mul,
    neg,
)
from repro.algebra.eval import (
    eval_expr,
    eval_scalar,
    gmr_add,
    gmr_equal,
    gmr_from_rows,
)


def rel(name, *vars_):
    return Rel(name, tuple(Var(v) for v in vars_))


@pytest.fixture
def db():
    return {
        "R": {(1, 10): 1, (2, 20): 2, (3, 20): 1},
        "S": {(10, 100): 1, (20, 200): 1, (20, 300): 1},
        "T": {(100, 7): 1, (200, 8): 1},
        "E": {},
    }


class TestLeaves:
    def test_const(self, db):
        assert eval_expr(Const(5), {}, db) == ((), {(): 5})

    def test_var_bound(self, db):
        assert eval_expr(Var("x"), {"x": 9}, db) == ((), {(): 9})

    def test_var_unbound_raises(self, db):
        with pytest.raises(SchemaError):
            eval_expr(Var("x"), {}, db)

    def test_rel_scan(self, db):
        cols, rows = eval_expr(rel("R", "a", "b"), {}, db)
        assert cols == ("a", "b")
        assert rows == {(1, 10): 1, (2, 20): 2, (3, 20): 1}

    def test_rel_with_bound_var_filters(self, db):
        cols, rows = eval_expr(rel("R", "a", "b"), {"b": 20}, db)
        assert cols == ("a",)
        assert rows == {(2,): 2, (3,): 1}

    def test_rel_with_const_arg_filters(self, db):
        e = Rel("R", (Var("a"), Const(10)))
        cols, rows = eval_expr(e, {}, db)
        assert cols == ("a",)
        assert rows == {(1,): 1}

    def test_rel_duplicate_var_is_self_equality(self, db):
        dup_db = {"D": {(1, 1): 1, (1, 2): 1, (3, 3): 4}}
        e = Rel("D", (Var("x"), Var("x")))
        cols, rows = eval_expr(e, {}, dup_db)
        assert cols == ("x",)
        assert rows == {(1,): 1, (3,): 4}

    def test_unknown_relation_raises(self, db):
        with pytest.raises(AlgebraError):
            eval_expr(rel("NOPE", "a"), {}, db)

    def test_arity_mismatch_raises(self, db):
        with pytest.raises(AlgebraError):
            eval_expr(rel("R", "a"), {}, db)


class TestOperators:
    def test_join_multiplies_multiplicities(self, db):
        e = mul(rel("R", "a", "b"), rel("S", "b", "c"))
        cols, rows = eval_expr(e, {}, db)
        assert cols == ("a", "b", "c")
        assert rows == {
            (1, 10, 100): 1,
            (2, 20, 200): 2,
            (2, 20, 300): 2,
            (3, 20, 200): 1,
            (3, 20, 300): 1,
        }

    def test_empty_relation_short_circuits(self, db):
        e = mul(rel("E",), rel("R", "a", "b"))
        assert eval_expr(e, {}, db) == (("a", "b"), {})

    def test_add_merges_and_cancels(self, db):
        e = add(rel("R", "a", "b"), neg(rel("R", "a", "b")))
        assert eval_expr(e, {}, db) == (("a", "b"), {})

    def test_add_mismatched_branches_raise(self, db):
        e = add(rel("R", "a", "b"), rel("S", "b", "c"))
        with pytest.raises(SchemaError):
            eval_expr(e, {}, db)

    def test_cmp_true_false(self, db):
        assert eval_scalar(Cmp("<", Const(1), Const(2)), {}, db) == 1
        assert eval_scalar(Cmp(">", Const(1), Const(2)), {}, db) == 0
        assert eval_scalar(Cmp("=", Const("x"), Const("x")), {}, db) == 1
        assert eval_scalar(Cmp("!=", Const("x"), Const(1)), {}, db) == 1

    def test_cmp_ordered_mixed_types_raise(self, db):
        with pytest.raises(AlgebraError):
            eval_scalar(Cmp("<", Const("x"), Const(1)), {}, db)

    def test_filtered_join(self, db):
        e = mul(rel("R", "a", "b"), Cmp(">", Var("b"), Const(15)))
        cols, rows = eval_expr(e, {}, db)
        assert rows == {(2, 20): 2, (3, 20): 1}

    def test_div_by_zero_is_zero(self, db):
        assert eval_scalar(Div(Const(4), Const(0)), {}, db) == 0
        assert eval_scalar(Div(Const(4), Const(2)), {}, db) == 2


class TestAggSumEval:
    def test_full_aggregate(self, db):
        e = AggSum((), mul(rel("R", "a", "b"), Var("a")))
        # 1*1 + 2*2 + 3*1 = 8
        assert eval_scalar(e, {}, db) == 8

    def test_group_by(self, db):
        e = AggSum(("b",), mul(rel("R", "a", "b"), Var("a")))
        cols, rows = eval_expr(e, {}, db)
        assert cols == ("b",)
        assert rows == {(10,): 1, (20,): 7}

    def test_group_var_bound_in_env_filters(self, db):
        e = AggSum(("b",), mul(rel("R", "a", "b"), Var("a")))
        cols, rows = eval_expr(e, {"b": 20}, db)
        assert cols == ()
        assert rows == {(): 7}

    def test_empty_aggregate_is_zero_scalar(self, db):
        e = AggSum((), rel("E",))
        assert eval_scalar(e, {}, db) == 0


class TestLiftAndExists:
    def test_lift_binds(self, db):
        e = Lift("x", Const(3))
        assert eval_expr(e, {}, db) == (("x",), {(3,): 1})

    def test_lift_bound_tests_equality(self, db):
        e = Lift("x", Const(3))
        assert eval_expr(e, {"x": 3}, db) == ((), {(): 1})
        assert eval_expr(e, {"x": 4}, db) == ((), {})

    def test_lift_of_aggregate(self, db):
        inner = AggSum((), mul(rel("R", "a", "b"), Var("a")))
        e = AggSum((), mul(Lift("total", inner), Var("total")))
        assert eval_scalar(e, {}, db) == 8

    def test_exists_caps_multiplicity(self, db):
        e = Exists(rel("R", "a", "b"))
        cols, rows = eval_expr(e, {}, db)
        assert rows == {(1, 10): 1, (2, 20): 1, (3, 20): 1}

    def test_exists_of_negative_is_one(self, db):
        e = Exists(neg(rel("R", "a", "b")))
        _, rows = eval_expr(e, {}, db)
        assert set(rows.values()) == {1}


class TestCorrelatedPatterns:
    def test_vwap_style_nested_aggregate(self, db):
        # sum over R rows where a < (total count of S rows)
        count_s = AggSum((), rel("S", "x", "y"))
        e = AggSum(
            (),
            mul(
                rel("R", "a", "b"),
                Lift("n", count_s),
                Cmp("<", Var("a"), Var("n")),
                Var("a"),
            ),
        )
        # |S| = 3; rows with a < 3: a=1 (m1), a=2 (m2) -> 1 + 4 = 5
        assert eval_scalar(e, {}, db) == 5

    def test_correlated_subaggregate(self, db):
        # for each R(a,b): count of S rows with key = b
        per_b = AggSum((), Rel("S", (Var("b"), Var("c"))))
        e = AggSum((), mul(rel("R", "a", "b"), per_b))
        # b=10 -> 1 S row (x1), b=20 -> 2 rows (x mult 2 + 1) => 1 + 2*2 + 1*2 = wait:
        # R rows: (1,10)x1 -> 1; (2,20)x2 -> 2*2=4; (3,20)x1 -> 2. Total 7.
        assert eval_scalar(e, {}, db) == 7


class TestGMRHelpers:
    def test_gmr_from_rows_counts_duplicates(self):
        g = gmr_from_rows([(1,), (1,), (2,)])
        assert g == {(1,): 2, (2,): 1}

    def test_gmr_add_prunes_zeros(self):
        g = gmr_add({(1,): 1}, {(1,): -1, (2,): 3})
        assert g == {(2,): 3}

    def test_gmr_equal_ignores_zero_entries(self):
        assert gmr_equal({(1,): 0, (2,): 5}, {(2,): 5})
