"""Delta derivation tests: concrete paper cases and the delta invariant.

The central property (the correctness foundation of the whole compiler):

    eval(Q, db + event) == eval(Q, db) + eval(delta(Q, event), db)

for every query Q, database db, and single-tuple insert/delete event.
"""

import pytest
from hypothesis import given, settings

from repro.errors import AlgebraError
from repro.algebra.expr import (
    AggSum,
    Cmp,
    Const,
    Exists,
    Lift,
    MapRef,
    Rel,
    Var,
    ZERO,
    add,
    mul,
    neg,
)
from repro.algebra.delta import Event, delta, event_for
from repro.algebra.eval import eval_expr, gmr_add, gmr_equal

from tests.checks import apply_event
from tests.strategies import closed_queries, databases, events


def rel(name, *vars_):
    return Rel(name, tuple(Var(v) for v in vars_))


PAPER_QUERY = AggSum(
    (), mul(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d"), Var("a"), Var("d"))
)


class TestEventModel:
    def test_sign_validation(self):
        with pytest.raises(AlgebraError):
            Event("R", 2, ("x",))

    def test_event_name(self):
        assert Event("R", 1, ("x", "y")).name == "on_insert_R"
        assert Event("R", -1, ("x", "y")).name == "on_delete_R"

    def test_event_for_builds_params(self):
        ev = event_for("Bids", ("price", "volume"), 1)
        assert ev.params == ("ev_bids_price", "ev_bids_volume")


class TestStructuralRules:
    def test_unrelated_relation_has_zero_delta(self):
        ev = Event("T", 1, ("c0", "d0"))
        assert delta(rel("R", "a", "b"), ev) == ZERO

    def test_constant_and_var_have_zero_delta(self):
        ev = Event("R", 1, ("a0", "b0"))
        assert delta(Const(3), ev) == ZERO
        assert delta(Var("x"), ev) == ZERO

    def test_relation_atom_becomes_singleton(self):
        ev = Event("R", 1, ("a0", "b0"))
        d = delta(rel("R", "a", "b"), ev)
        assert d == mul(Lift("a", Var("a0")), Lift("b", Var("b0")))

    def test_delete_negates_singleton(self):
        ev = Event("R", -1, ("a0", "b0"))
        d = delta(rel("R", "a", "b"), ev)
        assert d == neg(mul(Lift("a", Var("a0")), Lift("b", Var("b0"))))

    def test_constant_arg_becomes_param_equality(self):
        ev = Event("R", 1, ("a0", "b0"))
        d = delta(Rel("R", (Var("a"), Const(7))), ev)
        assert d == mul(Lift("a", Var("a0")), Cmp("=", Var("b0"), Const(7)))

    def test_arity_mismatch_raises(self):
        with pytest.raises(AlgebraError):
            delta(rel("R", "a"), Event("R", 1, ("x", "y")))

    def test_sum_rule(self):
        ev = Event("R", 1, ("a0", "b0"))
        q = add(AggSum((), rel("R", "a", "b")), AggSum((), rel("T", "c", "d")))
        d = delta(q, ev)
        # Only the R-dependent branch contributes.
        assert d == AggSum((), delta(rel("R", "a", "b"), ev))

    def test_product_rule_has_cross_term(self):
        ev = Event("R", 1, ("x0",))
        q = mul(Rel("R", (Var("x"),)), Rel("R", (Var("y"),)))
        d = delta(q, ev)
        # d(R*R) = dR*R + R*dR + dR*dR: three terms.
        assert isinstance(d.terms, tuple) and len(d.terms) == 3

    def test_mapref_delta_is_an_error(self):
        ev = Event("R", 1, ("a0", "b0"))
        q = mul(rel("R", "a", "b"), MapRef("m", (Var("a"),)))
        with pytest.raises(AlgebraError):
            delta(q, ev)

    def test_aggsum_delta_pushes_inside(self):
        ev = Event("T", 1, ("c0", "d0"))
        d = delta(PAPER_QUERY, ev)
        assert isinstance(d, AggSum)
        assert d.group == ()

    def test_exists_uses_finite_difference(self):
        ev = Event("R", 1, ("a0", "b0"))
        q = Exists(rel("R", "a", "b"))
        d = delta(q, ev)
        assert isinstance(d, type(add(Const(1), Const(2))))  # an Add
        assert len(d.terms) == 2

    def test_lift_without_stream_dependency_is_zero(self):
        ev = Event("R", 1, ("a0", "b0"))
        assert delta(Lift("x", Const(3)), ev) == ZERO

    def test_cmp_without_stream_dependency_is_zero(self):
        ev = Event("R", 1, ("a0", "b0"))
        assert delta(Cmp("<", Var("x"), Const(3)), ev) == ZERO


def _check_invariant(query, db, name, sign, values):
    ev = event_for(name, tuple(f"c{i}" for i in range(len(values))), sign)
    env = dict(zip(ev.params, values))
    d = delta(query, ev)

    before_cols, before = eval_expr(query, {}, db)
    after_cols, after = eval_expr(query, {}, apply_event(db, name, sign, values))
    delta_cols, change = eval_expr(d, env, db)

    assert set(after_cols) == set(before_cols)
    if change:
        # Align delta columns with the query's column order.
        positions = [delta_cols.index(c) for c in before_cols]
        change = {tuple(k[p] for p in positions): v for k, v in change.items()}
    assert gmr_equal(after, gmr_add(before, change)), (
        f"delta invariant violated for {query!r} on {sign:+d}{name}{values}: "
        f"before={before} after={after} delta={change}"
    )


class TestDeltaInvariantConcrete:
    """Hand-picked shapes that historically break IVM implementations."""

    def test_paper_query_all_events(self):
        db = {
            "R": {(1, 10): 1, (2, 20): 1},
            "S": {(10, 100): 1, (20, 100): 2},
            "T": {(100, 5): 1},
        }
        for name in ("R", "S", "T"):
            for sign in (1, -1):
                _check_invariant(PAPER_QUERY, db, name, sign, (20, 100))

    def test_self_join_cross_term(self):
        q = AggSum((), mul(Rel("R", (Var("x"), Var("y"))), Rel("R", (Var("y"), Var("z")))))
        db = {"R": {(1, 1): 1, (1, 2): 1}, "S": {}, "T": {}}
        _check_invariant(q, db, "R", 1, (1, 1))
        _check_invariant(q, db, "R", -1, (1, 1))

    def test_nested_aggregate_in_comparison(self):
        # VWAP-shaped: sum of a over R rows where a < total count of S.
        count_s = AggSum((), rel("S", "x", "y"))
        q = AggSum(
            (),
            mul(rel("R", "a", "b"), Lift("n", count_s), Cmp("<", Var("a"), Var("n")), Var("a")),
        )
        db = {"R": {(1, 0): 1, (5, 0): 1}, "S": {(0, 0): 1, (1, 1): 1}, "T": {}}
        # Inserting into S moves the threshold: both R rows flip eligibility.
        _check_invariant(q, db, "S", 1, (2, 2))
        _check_invariant(q, db, "S", -1, (1, 1))
        _check_invariant(q, db, "R", 1, (2, 2))

    def test_exists_flips_on_first_and_last_tuple(self):
        q = AggSum((), mul(Exists(rel("S", "x", "y")), Const(10)))
        empty = {"R": {}, "S": {}, "T": {}}
        one = {"R": {}, "S": {(1, 1): 1}, "T": {}}
        _check_invariant(q, empty, "S", 1, (1, 1))  # 0 -> 10
        _check_invariant(q, one, "S", -1, (1, 1))  # 10 -> 0
        _check_invariant(q, one, "S", 1, (2, 2))  # stays 10

    def test_group_by_delta(self):
        q = AggSum(("b",), mul(rel("R", "a", "b"), Var("a")))
        db = {"R": {(1, 10): 1, (2, 20): 1}, "S": {}, "T": {}}
        _check_invariant(q, db, "R", 1, (5, 10))
        _check_invariant(q, db, "R", 1, (5, 30))  # brand-new group
        _check_invariant(q, db, "R", -1, (1, 10))  # group disappears


class TestDeltaInvariantProperty:
    @settings(max_examples=200, deadline=None)
    @given(query=closed_queries(), db=databases(), event=events())
    def test_delta_invariant(self, query, db, event):
        name, sign, values = event
        _check_invariant(query, db, name, sign, values)

    @settings(max_examples=60, deadline=None)
    @given(query=closed_queries(), db=databases(), event=events())
    def test_second_order_delta_invariant(self, query, db, event):
        """The delta of a delta also satisfies the invariant (the property
        the *recursive* compilation relies on)."""
        name, sign, values = event
        ev = event_for(name, tuple(f"p{i}" for i in range(len(values))), sign)
        first = delta(query, ev)
        # Close the first-order delta over its parameters via lifts so it is
        # a proper query again, then check the invariant for a second event.
        closed = AggSum(
            (),
            mul(*(Lift(p, Const(v)) for p, v in zip(ev.params, values)), first),
        )
        _check_invariant(closed, db, name, sign, values)
