"""Baseline engines must agree with the compiled DBToaster engine."""

import pytest

from repro.baselines import (
    ENGINE_KINDS,
    StreamOpEngine,
    UnsupportedQueryError,
    make_engine,
)
from repro.sql.catalog import Catalog
from tests.integration.test_engine_vs_oracle import QUERIES, random_stream

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
CREATE STREAM bids (broker_id int, price int, volume int);
CREATE STREAM asks (broker_id int, price int, volume int);
"""

# Queries the stream-operator network can express (no subqueries).
STREAMABLE = [
    "chain_join",
    "grouped",
    "avg",
    "minmax",
    "self_join",
    "two_way_grouped",
    "axfinder",
    "or_predicate",
]

NESTED = ["exists_correlated", "in_subquery", "vwap_nested", "not_in"]


def drive(engine, events):
    for event in events:
        engine.process(event)


@pytest.fixture
def catalog():
    return Catalog.from_script(CATALOG_DDL)


def relations_for(sql, catalog):
    from repro.algebra.translate import translate_sql

    return list(translate_sql(sql, catalog, name="q").relations)


class TestAgreementWithDBToaster:
    @pytest.mark.parametrize("name", STREAMABLE)
    @pytest.mark.parametrize("kind", ["ivm", "streamops", "reeval_lazy"])
    def test_engine_matches_compiled(self, name, kind, catalog):
        sql = QUERIES[name]
        reference = make_engine("dbtoaster", {"q": sql}, catalog)
        other = make_engine(kind, {"q": sql}, catalog)
        events = random_stream(relations_for(sql, catalog), 150, seed=5)
        checkpoints = (30, 75, 149)
        for step, event in enumerate(events):
            reference.process(event)
            other.process(event)
            if step in checkpoints:
                expected = sorted(reference.results("q"), key=repr)
                got = sorted(other.results("q"), key=repr)
                assert _rows_close(got, expected), (kind, step, got, expected)

    @pytest.mark.parametrize("name", NESTED)
    def test_reeval_handles_nested_queries(self, name, catalog):
        sql = QUERIES[name]
        reference = make_engine("dbtoaster", {"q": sql}, catalog)
        other = make_engine("reeval_lazy", {"q": sql}, catalog)
        events = random_stream(relations_for(sql, catalog), 120, seed=9)
        for event in events:
            reference.process(event)
            other.process(event)
        expected = sorted(reference.results("q"), key=repr)
        got = sorted(other.results("q"), key=repr)
        assert _rows_close(got, expected)

    @pytest.mark.parametrize("name", NESTED)
    def test_streamops_rejects_nested_queries(self, name, catalog):
        """The paper: stream engines cannot express order-book nesting."""
        with pytest.raises(UnsupportedQueryError):
            StreamOpEngine({"q": QUERIES[name]}, catalog)


class TestBatchedDelivery:
    """Every bakeoff engine accepts batches and agrees with itself per-event."""

    @pytest.mark.parametrize(
        "kind", ["dbtoaster", "dbtoaster_interp", "ivm", "streamops", "reeval"]
    )
    def test_batched_stream_matches_per_event(self, kind, catalog):
        sql = QUERIES["two_way_grouped"]
        per_event = make_engine(kind, {"q": sql}, catalog)
        batched = make_engine(kind, {"q": sql}, catalog)
        events = random_stream(relations_for(sql, catalog), 120, seed=3)
        drive(per_event, events)
        count = batched.process_stream(events, batch_size=16)
        assert count == 120
        assert batched.events_processed == per_event.events_processed
        assert sorted(batched.results("q"), key=repr) == sorted(
            per_event.results("q"), key=repr
        )


class TestEngineFactory:
    def test_all_kinds_constructible(self, catalog):
        for kind in ENGINE_KINDS:
            engine = make_engine(kind, {"q": QUERIES["grouped"]}, catalog)
            engine.insert("bids", 1, 100, 7)
            assert engine.results("q")

    def test_unknown_kind_raises(self, catalog):
        from repro.errors import EventError

        with pytest.raises(EventError):
            make_engine("oracle9i", {"q": QUERIES["grouped"]}, catalog)

    def test_eager_reeval_caches(self, catalog):
        engine = make_engine("reeval", {"q": QUERIES["grouped"]}, catalog)
        engine.insert("bids", 1, 100, 7)
        assert engine.results("q") == [(1, 700, 1)]


class TestStateAccounting:
    def test_streamops_materialises_join_state(self, catalog):
        engine = make_engine("streamops", {"q": QUERIES["two_way_grouped"]}, catalog)
        for i in range(10):
            engine.insert("bids", i % 3, 100 + i, 10)
            engine.insert("asks", i % 3, 100 + i, 5)
        assert engine.total_entries() > 20  # both join sides + groups

    def test_dbtoaster_keeps_compact_aggregates(self, catalog):
        engine = make_engine("dbtoaster", {"q": QUERIES["two_way_grouped"]}, catalog)
        for i in range(10):
            engine.insert("bids", i % 3, 100 + i, 10)
            engine.insert("asks", i % 3, 100 + i, 5)
        # Aggregate maps keyed by broker: far fewer entries than raw rows.
        assert engine.total_entries() < 30


def _rows_close(got, expected, tol=1e-9):
    if len(got) != len(expected):
        return False
    for g_row, e_row in zip(got, expected):
        if len(g_row) != len(e_row):
            return False
        for g, e in zip(g_row, e_row):
            if isinstance(g, str) or isinstance(e, str):
                if g != e:
                    return False
            elif abs(g - e) > tol:
                return False
    return True
