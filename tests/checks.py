"""Shared assertion helpers for comparing evaluation results."""

from __future__ import annotations

from repro.algebra.eval import gmr_equal


def align_rows(
    cols: tuple[str, ...],
    rows: dict,
    target_cols: tuple[str, ...],
) -> dict:
    """Re-key ``rows`` from ``cols`` order into ``target_cols`` order."""
    if not rows or cols == target_cols:
        return rows
    positions = [cols.index(c) for c in target_cols]
    return {tuple(k[p] for p in positions): v for k, v in rows.items()}


def assert_equivalent_results(
    cols_a: tuple[str, ...],
    rows_a: dict,
    cols_b: tuple[str, ...],
    rows_b: dict,
    message: str = "",
) -> None:
    """Assert two evaluation results denote the same GMR.

    Column order may differ; and a result that is empty (identically zero)
    is allowed to have lost its column list entirely (a fully simplified
    zero expression carries no schema).
    """
    if not rows_a and not rows_b:
        return
    if set(cols_a) != set(cols_b):
        raise AssertionError(
            f"column sets differ: {cols_a} vs {cols_b} {message}"
        )
    aligned = align_rows(cols_b, rows_b, cols_a)
    assert gmr_equal(rows_a, aligned), (
        f"results differ: {rows_a} vs {aligned} {message}"
    )


def apply_event(db: dict, name: str, sign: int, values: tuple) -> dict:
    """A copy of ``db`` with one single-tuple insert/delete applied."""
    from repro.algebra.eval import gmr_add

    updated = dict(db)
    updated[name] = gmr_add(db[name], {tuple(values): sign})
    return updated
