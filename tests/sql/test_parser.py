"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    AggregateCall,
    Arith,
    BetweenExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    CreateRelation,
    ExistsExpr,
    InExpr,
    Literal,
    Not,
    ScalarSubquery,
    SelectQuery,
    Star,
    UnaryMinus,
)
from repro.sql.parser import parse_query, parse_script, parse_statement


class TestSelectBasics:
    def test_paper_query(self):
        q = parse_query(
            "SELECT sum(A*D) FROM R, S, T WHERE R.B = S.B AND S.C = T.C"
        )
        assert len(q.items) == 1
        agg = q.items[0].expr
        assert isinstance(agg, AggregateCall) and agg.func == "SUM"
        assert isinstance(agg.argument, Arith) and agg.argument.op == "*"
        assert [t.name for t in q.tables] == ["R", "S", "T"]
        assert isinstance(q.where, BoolOp) and q.where.op == "AND"

    def test_aliases(self):
        q = parse_query("SELECT b.price FROM bids b, asks AS a WHERE sum(b.v) > 0")
        assert q.tables[0].alias == "b"
        assert q.tables[1].alias == "a"
        assert q.tables[0].binding == "b"

    def test_select_item_aliases(self):
        q = parse_query("SELECT sum(x) AS total, sum(y) grand FROM R")
        assert q.items[0].alias == "total"
        assert q.items[1].alias == "grand"

    def test_group_by(self):
        q = parse_query("SELECT broker, sum(v) FROM bids GROUP BY broker")
        assert q.group_by == (ColumnRef(None, "broker"),)

    def test_group_by_qualified(self):
        q = parse_query("SELECT b.broker, sum(v) FROM bids b GROUP BY b.broker")
        assert q.group_by == (ColumnRef("b", "broker"),)

    def test_count_star(self):
        q = parse_query("SELECT count(*) FROM R")
        agg = q.items[0].expr
        assert isinstance(agg, AggregateCall) and isinstance(agg.argument, Star)

    def test_having_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(a) FROM R GROUP BY b HAVING sum(a) > 1")

    def test_count_distinct_parses(self):
        query = parse_query("SELECT count(DISTINCT a) FROM R")
        agg = query.items[0].expr
        assert agg.func == "COUNT" and agg.distinct

    @pytest.mark.parametrize("func", ["sum", "avg", "min", "max"])
    def test_non_count_distinct_aggregate_rejected(self, func):
        """DISTINCT is only incrementalised under COUNT; every other
        spelling fails at parse time, naming the aggregate and the
        supported set."""
        with pytest.raises(ParseError, match="supported aggregates") as exc:
            parse_query(f"SELECT {func}(DISTINCT a) FROM R")
        assert f"{func.upper()}(DISTINCT" in str(exc.value)

    @pytest.mark.parametrize("func", ["median", "stddev", "variance", "mode"])
    def test_unknown_aggregate_rejected_early(self, func):
        """Unknown function calls die in the parser — one pointed error,
        not a late translation failure on a misparsed column."""
        with pytest.raises(ParseError, match="supported aggregates") as exc:
            parse_query(f"SELECT {func}(a) FROM R")
        assert func.upper() in str(exc.value)


class TestJoinSyntax:
    def test_inner_join_desugars_to_where(self):
        q = parse_query(
            "SELECT sum(a) FROM R INNER JOIN S ON R.b = S.b WHERE S.c > 1"
        )
        assert [t.name for t in q.tables] == ["R", "S"]
        assert isinstance(q.where, BoolOp) and q.where.op == "AND"
        assert len(q.where.operands) == 2

    def test_bare_join(self):
        q = parse_query("SELECT sum(a) FROM R JOIN S ON R.b = S.b")
        assert len(q.tables) == 2
        assert isinstance(q.where, Comparison)


class TestExpressions:
    def test_precedence_mul_before_add(self):
        q = parse_query("SELECT sum(a + b * c) FROM R")
        arg = q.items[0].expr.argument
        assert arg.op == "+"
        assert isinstance(arg.right, Arith) and arg.right.op == "*"

    def test_parentheses_override(self):
        q = parse_query("SELECT sum((a + b) * c) FROM R")
        arg = q.items[0].expr.argument
        assert arg.op == "*"

    def test_unary_minus(self):
        q = parse_query("SELECT sum(-a) FROM R")
        assert isinstance(q.items[0].expr.argument, UnaryMinus)

    def test_and_or_precedence(self):
        q = parse_query("SELECT sum(a) FROM R WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(q.where, BoolOp) and q.where.op == "OR"
        assert isinstance(q.where.operands[1], BoolOp)
        assert q.where.operands[1].op == "AND"

    def test_not(self):
        q = parse_query("SELECT sum(a) FROM R WHERE NOT x = 1")
        assert isinstance(q.where, Not)

    def test_comparison_normalises_ne(self):
        q = parse_query("SELECT sum(a) FROM R WHERE x <> 1")
        assert q.where.op == "!="

    def test_between(self):
        q = parse_query("SELECT sum(a) FROM R WHERE x BETWEEN 1 AND 10")
        assert isinstance(q.where, BetweenExpr)

    def test_string_literal(self):
        q = parse_query("SELECT sum(a) FROM R WHERE region = 'AMERICA'")
        assert q.where.right == Literal("AMERICA")


class TestSubqueries:
    def test_scalar_subquery(self):
        q = parse_query(
            "SELECT sum(price) FROM bids b WHERE b.volume > "
            "(SELECT sum(b2.volume) FROM bids b2)"
        )
        assert isinstance(q.where.right, ScalarSubquery)

    def test_exists(self):
        q = parse_query(
            "SELECT sum(a) FROM R WHERE EXISTS (SELECT b FROM S WHERE S.b = R.b)"
        )
        assert isinstance(q.where, ExistsExpr)

    def test_not_exists(self):
        q = parse_query(
            "SELECT sum(a) FROM R WHERE NOT EXISTS (SELECT b FROM S)"
        )
        assert isinstance(q.where, Not)
        assert isinstance(q.where.operand, ExistsExpr)

    def test_in_subquery(self):
        q = parse_query("SELECT sum(a) FROM R WHERE b IN (SELECT b FROM S)")
        assert isinstance(q.where, InExpr)

    def test_not_in_subquery(self):
        q = parse_query("SELECT sum(a) FROM R WHERE b NOT IN (SELECT b FROM S)")
        assert isinstance(q.where, Not)
        assert isinstance(q.where.operand, InExpr)

    def test_correlated_vwap_shape(self):
        q = parse_query(
            """
            SELECT sum(b.price * b.volume) FROM bids b
            WHERE 0.25 * (SELECT sum(b1.volume) FROM bids b1) >
                  (SELECT sum(b2.volume) FROM bids b2 WHERE b2.price > b.price)
            """
        )
        assert isinstance(q.where, Comparison)
        assert isinstance(q.where.left, Arith)


class TestDDL:
    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE R (A int, B varchar(20))")
        assert isinstance(stmt, CreateRelation)
        assert not stmt.is_stream
        assert [c.name for c in stmt.columns] == ["A", "B"]

    def test_create_stream(self):
        stmt = parse_statement(
            "CREATE STREAM bids (t float, id int, price decimal(10,2))"
        )
        assert isinstance(stmt, CreateRelation)
        assert stmt.is_stream

    def test_script_with_semicolons(self):
        statements = parse_script(
            "CREATE TABLE R (A int); CREATE TABLE S (B int);"
            "SELECT sum(A) FROM R;"
        )
        assert len(statements) == 3
        assert isinstance(statements[2], SelectQuery)


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(a) R")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT sum(a) FROM R extra nonsense (")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_query("SELECT sum((a) FROM R")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_statement("")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("SELECT FROM R")
        assert excinfo.value.line == 1
