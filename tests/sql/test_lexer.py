"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_are_case_insensitive(self):
        assert values("select SELECT Select") == ["SELECT"] * 3

    def test_identifiers_preserve_case(self):
        assert values("lineitem LineItem") == ["lineitem", "LineItem"]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("select foo")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENTIFIER

    def test_quoted_identifier(self):
        tokens = tokenize('"select"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "select"


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]
        assert isinstance(values("42")[0], int)

    def test_float(self):
        assert values("3.25") == [3.25]
        assert values(".5") == [0.5]

    def test_scientific_notation(self):
        assert values("1e3 2.5E-2") == [1000.0, 0.025]

    def test_integer_then_dot_identifier(self):
        # "b.price" style access must not eat the dot after an identifier.
        tokens = tokenize("b.price")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]


class TestStrings:
    def test_simple_string(self):
        assert values("'AMERICA'") == ["AMERICA"]

    def test_escaped_quote(self):
        assert values("'O''Neil'") == ["O'Neil"]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_newline_in_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'line\nbreak'")


class TestOperators:
    def test_all_comparison_operators(self):
        assert values("<= >= <> != = < >") == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_arithmetic_operators(self):
        assert values("+ - * /") == ["+", "-", "*", "/"]

    def test_punctuation(self):
        ks = kinds("(,);")[:-1]
        assert ks == [
            TokenType.LPAREN,
            TokenType.COMMA,
            TokenType.RPAREN,
            TokenType.SEMICOLON,
        ]


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert values("select -- comment\n 1") == ["SELECT", 1]

    def test_block_comment(self):
        assert values("select /* multi\nline */ 1") == ["SELECT", 1]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* oops")

    def test_positions_track_lines(self):
        tokens = tokenize("select\n  foo")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("select @")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 8
