"""Unit tests for the schema catalog."""

import pytest

from repro.errors import CatalogError
from repro.sql.catalog import Catalog, Column, Relation, SqlType, sql_type_from_name


class TestTypes:
    def test_type_mapping(self):
        assert sql_type_from_name("int") is SqlType.INT
        assert sql_type_from_name("INTEGER") is SqlType.INT
        assert sql_type_from_name("bigint") is SqlType.INT
        assert sql_type_from_name("date") is SqlType.INT
        assert sql_type_from_name("double") is SqlType.FLOAT
        assert sql_type_from_name("decimal") is SqlType.FLOAT
        assert sql_type_from_name("varchar") is SqlType.STRING

    def test_unknown_type_raises(self):
        with pytest.raises(CatalogError):
            sql_type_from_name("blob")

    def test_numeric_flag(self):
        assert SqlType.INT.is_numeric
        assert SqlType.FLOAT.is_numeric
        assert not SqlType.STRING.is_numeric


class TestRelation:
    def test_column_lookup_is_case_insensitive(self):
        rel = Relation("R", (Column("Price", SqlType.FLOAT),))
        assert rel.column("price").name == "Price"
        assert rel.has_column("PRICE")

    def test_missing_column_raises(self):
        rel = Relation("R", (Column("a", SqlType.INT),))
        with pytest.raises(CatalogError):
            rel.column("b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Relation("R", (Column("a", SqlType.INT), Column("A", SqlType.INT)))

    def test_arity_and_names(self):
        rel = Relation("R", (Column("a", SqlType.INT), Column("b", SqlType.INT)))
        assert rel.arity == 2
        assert rel.column_names == ("a", "b")


class TestCatalog:
    def test_from_script(self):
        catalog = Catalog.from_script(
            "CREATE STREAM bids (t float, id int);"
            "CREATE TABLE nation (n_name varchar(25));"
        )
        assert len(catalog) == 2
        assert catalog.get("BIDS").is_stream
        assert not catalog.get("nation").is_stream

    def test_duplicate_definition_rejected(self):
        catalog = Catalog.from_script("CREATE TABLE R (a int)")
        with pytest.raises(CatalogError):
            catalog.define(Relation("r", (Column("x", SqlType.INT),)))

    def test_unknown_relation_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_contains_and_iter(self):
        catalog = Catalog.from_script("CREATE TABLE R (a int)")
        assert "R" in catalog and "r" in catalog
        assert [r.name for r in catalog] == ["R"]

    def test_select_in_catalog_script_rejected(self):
        with pytest.raises(CatalogError):
            Catalog.from_script("SELECT sum(a) FROM R")
