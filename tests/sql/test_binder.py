"""Unit tests for the binder (name resolution + validation)."""

import pytest

from repro.errors import BindError
from repro.sql.binder import bind_query
from repro.sql.catalog import Catalog, SqlType
from repro.sql.parser import parse_query


@pytest.fixture
def catalog():
    return Catalog.from_script(
        """
        CREATE STREAM bids (t float, id int, broker_id int, price float, volume float);
        CREATE STREAM asks (t float, id int, broker_id int, price float, volume float);
        CREATE TABLE nation (n_nationkey int, n_name varchar(25), n_regionkey int);
        """
    )


def bind(sql, catalog):
    return bind_query(parse_query(sql), catalog)


class TestResolution:
    def test_qualified_resolution(self, catalog):
        bound = bind("SELECT sum(b.price) FROM bids b", catalog)
        agg = bound.query.items[0].expr
        resolution = bound.resolve(agg.argument)
        assert resolution.binding == "b"
        assert resolution.relation.name == "bids"
        assert resolution.type is SqlType.FLOAT

    def test_unqualified_unique_resolution(self, catalog):
        bound = bind("SELECT sum(n_regionkey) FROM nation", catalog)
        agg = bound.query.items[0].expr
        assert bound.resolve(agg.argument).column == "n_regionkey"

    def test_ambiguous_column_raises(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(price) FROM bids, asks", catalog)

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(b.nope) FROM bids b", catalog)

    def test_unknown_table_alias_raises(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(zz.price) FROM bids b", catalog)

    def test_duplicate_alias_raises(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(b.price) FROM bids b, asks b", catalog)

    def test_correlated_subquery_resolves_outward(self, catalog):
        bound = bind(
            "SELECT sum(b.price) FROM bids b WHERE EXISTS "
            "(SELECT a.id FROM asks a WHERE a.broker_id = b.broker_id)",
            catalog,
        )
        exists = bound.query.where
        comparison = exists.query.where
        outer_ref = comparison.right
        assert bound.resolutions[id(outer_ref)].depth == 1
        inner_ref = comparison.left
        assert bound.resolutions[id(inner_ref)].depth == 0


class TestValidation:
    def test_aggregate_required(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT price FROM bids GROUP BY price", catalog)

    def test_group_by_discipline(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT broker_id, sum(price) FROM bids", catalog)

    def test_grouped_query_binds(self, catalog):
        bound = bind(
            "SELECT broker_id, sum(price) FROM bids GROUP BY broker_id", catalog
        )
        assert bound.group_names == ["broker_id"]
        assert bound.item_info[0].is_aggregate is False
        assert bound.item_info[1].is_aggregate is True

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(price) FROM bids WHERE sum(volume) > 5", catalog)

    def test_aggregate_of_aggregate_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(sum(price)) FROM bids", catalog)

    def test_star_outside_count_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(*) FROM bids", catalog)

    def test_where_must_be_boolean(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(price) FROM bids WHERE volume", catalog)


class TestTyping:
    def test_string_numeric_comparison_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(n_nationkey) FROM nation WHERE n_name = 5", catalog)

    def test_string_equality_allowed(self, catalog):
        bound = bind(
            "SELECT sum(n_nationkey) FROM nation WHERE n_name = 'FRANCE'", catalog
        )
        assert bound is not None

    def test_sum_of_string_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(n_name) FROM nation", catalog)

    def test_arith_on_string_rejected(self, catalog):
        with pytest.raises(BindError):
            bind("SELECT sum(n_nationkey) FROM nation WHERE n_name + 1 = 2", catalog)

    def test_min_of_string_allowed(self, catalog):
        bound = bind("SELECT min(n_name) FROM nation", catalog)
        assert bound.item_info[0].is_aggregate


class TestSubqueryValidation:
    def test_scalar_subquery_must_be_single_aggregate(self, catalog):
        with pytest.raises(BindError):
            bind(
                "SELECT sum(price) FROM bids WHERE volume > "
                "(SELECT id FROM asks)",
                catalog,
            )

    def test_scalar_subquery_no_group_by(self, catalog):
        with pytest.raises(BindError):
            bind(
                "SELECT sum(price) FROM bids WHERE volume > "
                "(SELECT sum(volume) FROM asks GROUP BY broker_id)",
                catalog,
            )

    def test_in_subquery_single_column(self, catalog):
        with pytest.raises(BindError):
            bind(
                "SELECT sum(price) FROM bids WHERE id IN (SELECT id, t FROM asks)",
                catalog,
            )

    def test_exists_subquery_binds_without_aggregates(self, catalog):
        bound = bind(
            "SELECT sum(b.price) FROM bids b WHERE EXISTS "
            "(SELECT a.id FROM asks a WHERE a.price > b.price)",
            catalog,
        )
        assert "asks" in bound.relations_used
        assert "bids" in bound.relations_used
