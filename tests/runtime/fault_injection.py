"""Fault-injection harness: kill a durable engine at nasty moments.

Two halves:

* **Subprocess crashes** — :func:`run_to_crash` launches this module as a
  child process (``python fault_injection.py child ...``) that processes a
  deterministic workload stream under a :class:`~repro.runtime.durability.
  CrashPoint`, which SIGKILLs the child at the Nth occurrence of a probe
  label (mid-frame write, between WAL append and apply, mid-snapshot...).
  The parent then recovers the directory and checks parity.  This is the
  real thing: an actual unclean process death, nothing flushed that the
  kernel hadn't been given.

* **In-process crash emulation** — the hypothesis suite in
  ``test_fault_injection.py`` needs hundreds of crash/recover cycles, so
  it swaps the SIGKILL action for an exception + ``abandon()`` (drop all
  buffered state, close raw fds without flushing).  The WAL writes through
  unbuffered ``os.write``, so the bytes on disk after ``abandon()`` are
  exactly the bytes after a SIGKILL at the same point.

The parity oracle (:func:`reference_state`): LSNs are assigned 1:1 to the
batches :func:`~repro.runtime.events.batches` yields, so the state
recovered at LSN *W* must equal a fresh engine that applied the first *W*
batches of the same stream — ``repr``-identical maps, equal results and
counters.

Run ``python tests/runtime/fault_injection.py smoke`` (with ``PYTHONPATH=
src``) for the CI crash-recovery smoke: a fixed-seed finance stream,
SIGKILL mid-stream at several probe points, recover, assert parity.
"""

from __future__ import annotations

import os
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.compiler import compile_sql  # noqa: E402
from repro.runtime import DeltaEngine  # noqa: E402
from repro.runtime.durability import CrashPoint, DurableEngine  # noqa: E402
from repro.runtime.events import batches  # noqa: E402

#: Probe labels the harness drives crashes through (a subset of
#: ``durability.PROBE_POINTS`` that every workload reaches).
CRASH_LABELS = (
    "wal.mid_frame",
    "engine.after_append",
    "engine.after_apply",
    "snapshot.mid_write",
    "snapshot.before_rename",
)


@lru_cache(maxsize=None)
def build_program(workload: str):
    """The compiled program of one harness workload.

    ``finance`` is the vwap query; ``bbo``/``act`` are the non-linear
    finance members (MIN/MAX and COUNT(DISTINCT) through Finalize-
    maintained auxiliary caches) — crashes there must recover the caches
    along with the ring state.
    """
    if workload in ("finance", "bbo", "act"):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        query = "vwap" if workload == "finance" else workload
        return compile_sql(FINANCE_QUERIES[query], finance_catalog(), name="q")
    if workload == "warehouse":
        from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog

        return compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="q")
    raise ValueError(f"unknown workload {workload!r}")


def stream_events(workload: str, n_events: int, seed: int) -> list:
    """A deterministic event stream (same bytes in parent and child)."""
    if workload in ("finance", "bbo", "act"):
        from repro.workloads.orderbook import OrderBookGenerator

        return list(OrderBookGenerator(seed=seed).events(n_events))
    if workload == "warehouse":
        from repro.runtime import StreamEvent
        from repro.workloads.tpch import TpchGenerator

        generator = TpchGenerator(sf=n_events / 7_500_000, seed=seed)
        return [
            StreamEvent(relation, 1, row)
            for relation, rows in generator.static_tables().items()
            for row in rows
        ] + [
            StreamEvent(relation, 1, row)
            for relation, row in generator.orders_and_lineitems()
        ]
    raise ValueError(f"unknown workload {workload!r}")


def reference_state(
    workload: str,
    n_events: int,
    seed: int,
    batch_size: int,
    lsn: int,
    columnar: bool = True,
) -> DeltaEngine:
    """The oracle: a fresh engine after the first ``lsn`` batches.

    The WAL stamps one LSN per dispatched batch, in stream order, so the
    durable state at watermark ``lsn`` must match this engine exactly.
    """
    program = build_program(workload)
    engine = DeltaEngine(program, columnar=columnar)
    for index, batch in enumerate(
        batches(stream_events(workload, n_events, seed), batch_size)
    ):
        if index >= lsn:
            break
        engine._process_batch(batch)
    return engine


def assert_recovery_parity(
    engine, lsn: int, workload: str, n_events: int, seed: int,
    batch_size: int, columnar: bool = True, exact_repr: bool = True,
) -> None:
    """Recovered state must equal the uninterrupted reference at ``lsn``."""
    reference = reference_state(
        workload, n_events, seed, batch_size, lsn, columnar=columnar
    )
    maps = engine.merged_maps() if hasattr(engine, "merged_maps") else engine.maps
    if exact_repr and not hasattr(engine, "merged_maps"):
        # Single-engine recovery reproduces storage layout and insertion
        # order, not just contents (sharded lanes hash with the per-process
        # salt, so only contents are comparable there).
        assert repr(maps) == repr(reference.maps), (
            f"recovered maps differ from reference at LSN {lsn}"
        )
    assert maps == reference.maps, (
        f"recovered maps differ from reference at LSN {lsn}"
    )
    assert engine.results("q") == reference.results("q")
    assert engine.events_processed == reference.events_processed


# ---------------------------------------------------------------------------
# Subprocess crash runner
# ---------------------------------------------------------------------------


def run_to_crash(
    directory: str | Path,
    label: str,
    hits: int,
    workload: str = "finance",
    n_events: int = 400,
    seed: int = 2009,
    batch_size: int = 16,
    fsync: str = "always",
    snapshot_every: int | None = None,
    columnar: bool = True,
    shards: int = 1,
    timeout: float = 120.0,
) -> int:
    """Run the child workload until the crash point SIGKILLs it.

    Returns the child's return code: ``-SIGKILL`` when the crash fired,
    ``0`` when the stream finished before reaching the crash point (e.g.
    ``hits`` beyond the stream's probe count) — callers assert whichever
    they expect.
    """
    argv = [
        sys.executable, os.fspath(Path(__file__).resolve()), "child",
        "--dir", os.fspath(directory), "--label", label,
        "--hits", str(hits), "--workload", workload,
        "--events", str(n_events), "--seed", str(seed),
        "--batch-size", str(batch_size), "--fsync", fsync,
        "--shards", str(shards),
    ]
    if snapshot_every:
        argv += ["--snapshot-every", str(snapshot_every)]
    if not columnar:
        argv += ["--no-columnar"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(argv, env=env, timeout=timeout)
    return result.returncode


def _child_main(args) -> int:
    probe = CrashPoint(args.label, hits=args.hits)  # SIGKILL on hit
    engine = DurableEngine(
        build_program(args.workload), args.dir,
        shards=args.shards, fsync=args.fsync,
        snapshot_every=args.snapshot_every, probe=probe,
        columnar=not args.no_columnar,
    )
    events = stream_events(args.workload, args.events, args.seed)
    engine.process_stream(events, batch_size=args.batch_size)
    engine.close()
    return 0


# ---------------------------------------------------------------------------
# CI smoke: crash at a fixed seed, recover, assert parity
# ---------------------------------------------------------------------------

_SMOKE_SCENARIOS = (
    # (label, hits, fsync, snapshot_every)
    ("engine.after_append", 7, "always", None),
    ("engine.after_apply", 9, "always", 4),
    ("wal.mid_frame", 5, "always", None),
    ("snapshot.mid_write", 2, "batch", 64),
    ("snapshot.before_rename", 2, "batch", 64),
)


def _smoke_main() -> int:
    import signal
    import tempfile

    from repro.runtime.durability import WriteAheadLog, recover_engine

    workload, n_events, seed, batch_size = "finance", 400, 2009, 16
    failures = 0
    for label, hits, fsync, snapshot_every in _SMOKE_SCENARIOS:
        with tempfile.TemporaryDirectory() as directory:
            code = run_to_crash(
                directory, label, hits, workload=workload,
                n_events=n_events, seed=seed, batch_size=batch_size,
                fsync=fsync, snapshot_every=snapshot_every,
            )
            if code != -signal.SIGKILL:
                print(f"FAIL {label}: child exited {code}, expected SIGKILL")
                failures += 1
                continue
            program = build_program(workload)
            engine, lsn = recover_engine(program, directory)
            try:
                assert_recovery_parity(
                    engine, lsn, workload, n_events, seed, batch_size
                )
                # Idempotence: recovering the same directory twice reaches
                # the same watermark and the same state.
                again, lsn_again = recover_engine(program, directory)
                assert lsn_again == lsn
                assert repr(again.maps) == repr(engine.maps)
            except AssertionError as exc:
                print(f"FAIL {label}: {exc}")
                failures += 1
                continue
            frames = sum(1 for _ in WriteAheadLog.replay(directory))
            print(
                f"ok   {label:<24} fsync={fsync:<6} "
                f"recovered LSN {lsn} ({frames} frames on disk)"
            )
    if failures:
        print(f"{failures} crash-recovery scenario(s) FAILED")
        return 1
    print(f"all {len(_SMOKE_SCENARIOS)} crash-recovery scenarios recovered "
          "to reference state")
    return 0


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    child = sub.add_parser("child", help="the workload process that dies")
    child.add_argument("--dir", required=True)
    child.add_argument("--label", required=True)
    child.add_argument("--hits", type=int, default=1)
    child.add_argument("--workload", default="finance")
    child.add_argument("--events", type=int, default=400)
    child.add_argument("--seed", type=int, default=2009)
    child.add_argument("--batch-size", type=int, default=16)
    child.add_argument("--fsync", default="always")
    child.add_argument("--snapshot-every", type=int, default=None)
    child.add_argument("--shards", type=int, default=1)
    child.add_argument("--no-columnar", action="store_true")
    sub.add_parser("smoke", help="fixed-seed SIGKILL/recover/parity sweep")
    return parser


if __name__ == "__main__":
    parsed = _build_parser().parse_args()
    if parsed.command == "child":
        sys.exit(_child_main(parsed))
    sys.exit(_smoke_main())
