"""CI serving smoke: a live server must stream exactly the offline answer.

For fixed-seed finance workload streams this script starts a real
:class:`~repro.runtime.serving.ViewServer` (thread-hosted, loopback
socket), connects framed-protocol subscribers — one from the start, one
joining mid-stream — pushes the stream through the serving ingest path,
and asserts every subscriber's accumulated state (catch-up snapshot plus
streamed deltas) equals a reference engine's offline
``query_results``.  One scenario runs over a
:class:`~repro.runtime.durability.DurableEngine`, checking that served
LSNs are the WAL's.

Run ``python tests/runtime/serving_smoke.py`` (with ``PYTHONPATH=src``).
Exit status 0 = every scenario in parity.  A watchdog alarm aborts the
run if anything wedges (the CI job adds its own hard timeout as well).
"""

from __future__ import annotations

import signal
import sys
import tempfile
from collections import Counter
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.algebra.translate import translate_sql  # noqa: E402
from repro.compiler import compile_queries  # noqa: E402
from repro.runtime import DeltaEngine  # noqa: E402
from repro.runtime.durability import DurableEngine  # noqa: E402
from repro.runtime.serving import (  # noqa: E402
    ServerThread,
    SubscriberClient,
    apply_changes,
    rows_from_snapshot,
)

#: (query, durable?) scenarios; every one must reach exact parity.
SCENARIOS = [
    ("vwap", False),
    ("bsp", False),
    ("bsp", True),
]

EVENTS = 600
SEED = 2009
BATCH_SIZE = 32
WATCHDOG_SECONDS = 180


def _program(query_name: str):
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    catalog = finance_catalog()
    translated = translate_sql(
        FINANCE_QUERIES[query_name], catalog, name=query_name
    )
    return compile_queries([translated], catalog)


def _stream():
    from repro.workloads.orderbook import OrderBookGenerator

    return list(OrderBookGenerator(seed=SEED).events(EVENTS))


def run_scenario(query_name: str, durable: bool, stream) -> list[str]:
    """Run one serve/subscribe/stream/compare cycle; returns failures."""
    program = _program(query_name)
    reference = DeltaEngine(program)
    reference.process_stream(stream, batch_size=BATCH_SIZE)
    offline = Counter(reference.results(query_name))

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        if durable:
            engine = DurableEngine(program, tmp, fsync="batch")
        else:
            engine = DeltaEngine(program)
        half = len(stream) // 2
        with ServerThread(engine) as handle:
            early = SubscriberClient(handle.host, handle.port)
            early_rows = rows_from_snapshot(early.subscribe(query_name))
            handle.publish_stream(stream[:half], batch_size=BATCH_SIZE)
            # The mid-stream joiner catches up from its snapshot alone.
            late = SubscriberClient(handle.host, handle.port)
            late_rows = rows_from_snapshot(late.subscribe(query_name))
            handle.publish_stream(stream[half:], batch_size=BATCH_SIZE)
            barrier = early.ping()
            for name, client, rows in [
                ("early", early, early_rows),
                ("late", late, late_rows),
            ]:
                for frame in client.drain_deltas(query_name, barrier):
                    if durable and frame["lsn"] > engine._wal.last_lsn:
                        failures.append(
                            f"{query_name}/{name}: delta LSN {frame['lsn']} "
                            f"beyond WAL tail {engine._wal.last_lsn}"
                        )
                    apply_changes(rows, frame["changes"])
                if rows != offline:
                    failures.append(
                        f"{query_name}/{name}: accumulated state diverges "
                        f"from offline query_results "
                        f"({len(rows)} vs {len(offline)} rows)"
                    )
            live = Counter(engine.results(query_name))
            if live != offline:
                failures.append(
                    f"{query_name}: served engine diverges from reference"
                )
            early.close()
            late.close()
        if durable:
            engine.close()
    return failures


def main() -> int:
    signal.signal(signal.SIGALRM, lambda *_: sys.exit("serving smoke wedged"))
    signal.alarm(WATCHDOG_SECONDS)
    stream = _stream()
    failures: list[str] = []
    for query_name, durable in SCENARIOS:
        scenario_failures = run_scenario(query_name, durable, stream)
        mode = "durable" if durable else "in-memory"
        if scenario_failures:
            failures.extend(scenario_failures)
            for line in scenario_failures:
                print(f"FAIL {line}")
        else:
            print(
                f"ok   {query_name:<6} {mode:<9} {EVENTS} events, "
                "early + mid-stream subscribers in parity"
            )
    if failures:
        print(f"{len(failures)} serving-smoke check(s) FAILED")
        return 1
    print(f"all {len(SCENARIOS)} serving scenarios streamed the offline answer")
    return 0


if __name__ == "__main__":
    sys.exit(main())
