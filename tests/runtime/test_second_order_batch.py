"""Second-order (delta-of-delta) batch absorption and the columnar spine.

The acceptance property: for self-reading triggers (vwap, mst, psp — plus
keyed-restate shapes), batched executors driven by the second-order
accumulate-then-flush plan must stay *map-identical* to per-event
execution — across compiled and interpreted modes, every batch size, and
sharded engines with 1–4 lanes.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.delta import Event, batch_delta_order, second_order_delta
from repro.compiler import compile_sql
from repro.errors import AlgebraError
from repro.ir.lower import lower_program, plan_second_order
from repro.ir.nodes import Clear, ForEachMap, ForEachRow, walk_stmts
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.runtime.events import (
    EventBatch,
    columns_from_rows,
    partition_columns,
    partition_rows,
    rows_from_columns,
)
from repro.sql.catalog import Catalog
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

#: The self-reading finance triggers the second-order sink targets (psp is
#: the independent control: first-order accumulation, no restatement).
SELF_READING = ("vwap", "mst", "psp")

#: The non-linear members: batched plans append Finalize blocks (pending
#: deltas merged key-wise, or a full rebuild on the restate path), which
#: must stay map-identical to per-event Finalize execution.
NONLINEAR = ("bbo", "act")

#: Keyed restatement: grouped root with a nested stream-derived threshold.
GROUPED_THRESHOLD = (
    "SELECT r.A, sum(r.B) FROM R r "
    "WHERE r.B > 0.5 * (SELECT sum(r1.B) FROM R r1) GROUP BY r.A"
)

_programs: dict[str, object] = {}


def finance_program(name: str):
    if name not in _programs:
        _programs[name] = compile_sql(
            FINANCE_QUERIES[name], finance_catalog(), name=name
        )
    return _programs[name]


@st.composite
def book_events(draw):
    """A short order-book stream: bids/asks inserts and deletes.

    Deletes need not match prior inserts — generalised multiset
    multiplicities are closed under deletion, so parity must hold on any
    ring state.
    """
    n = draw(st.integers(min_value=0, max_value=30))
    out = []
    small = st.integers(min_value=0, max_value=4)
    for _ in range(n):
        relation = draw(st.sampled_from(["bids", "asks"]))
        sign = draw(st.sampled_from([1, -1]))
        values = (
            draw(small),
            draw(small),
            draw(small),
            draw(st.integers(min_value=0, max_value=20)),  # price
            draw(st.integers(min_value=0, max_value=10)),  # volume
        )
        out.append(StreamEvent(relation, sign, values))
    return out


def per_event_maps(program, stream):
    engine = DeltaEngine(program)
    for event in stream:
        engine.process(event)
    return engine.maps


class TestSecondOrderParity:
    @pytest.mark.parametrize("query_name", SELF_READING + NONLINEAR)
    @pytest.mark.parametrize("mode", ["compiled", "interpreted"])
    @settings(max_examples=15, deadline=None)
    @given(
        stream=book_events(),
        batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
    )
    def test_batched_matches_per_event(self, query_name, mode, stream, batch_size):
        program = finance_program(query_name)
        reference = per_event_maps(program, stream)
        batched = DeltaEngine(program, mode=mode)
        batched.process_stream(stream, batch_size=batch_size)
        assert batched.maps == reference

    @pytest.mark.parametrize("query_name", SELF_READING + NONLINEAR)
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    @settings(max_examples=5, deadline=None)
    @given(stream=book_events())
    def test_sharded_matches_per_event(self, query_name, shards, stream):
        program = finance_program(query_name)
        reference = per_event_maps(program, stream)
        for mode in ("compiled", "interpreted"):
            with ShardedEngine(program, shards=shards, mode=mode) as engine:
                engine.process_stream(stream, batch_size=7)
                assert engine.merged_maps() == reference, mode

    @pytest.mark.parametrize("query_name", SELF_READING + NONLINEAR)
    @settings(max_examples=10, deadline=None)
    @given(stream=book_events())
    def test_ablation_fallback_matches(self, query_name, stream):
        """second_order=False (the per-row fallback) stays correct too."""
        program = finance_program(query_name)
        reference = per_event_maps(program, stream)
        engine = DeltaEngine(program, second_order=False)
        engine.process_stream(stream, batch_size=8)
        assert engine.maps == reference

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=30,
        ),
        batch_size=st.integers(min_value=1, max_value=9),
    )
    def test_keyed_restatement_matches(self, rows, batch_size):
        """A grouped root with a nested threshold restates a *keyed* map:
        the flush clears it and re-derives every group."""
        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        program = compile_sql(GROUPED_THRESHOLD, catalog)
        stream = [StreamEvent("R", 1, row) for row in rows]
        reference = per_event_maps(program, stream)
        for mode in ("compiled", "interpreted"):
            engine = DeltaEngine(program, mode=mode)
            engine.process_stream(stream, batch_size=batch_size)
            assert engine.maps == reference, mode


class TestDeltaOfDelta:
    def test_orders_on_vwap(self):
        program = finance_program("vwap")
        trigger = program.triggers[("bids", 1)]
        event = Event("bids", 1, trigger.params)
        orders = {
            name: batch_delta_order(map_def.defn, event)
            for name, map_def in program.maps.items()
        }
        assert orders["m1_base_bids"] == 1  # occurrence: state-independent
        assert orders["m2_bids"] == 1  # linear sum: state-independent
        assert orders["m3_bids"] == 2  # nested threshold: shifts per row
        assert orders["q_vwap_sum_0"] == 2

    def test_order_zero_for_unrelated_relation(self):
        program = finance_program("mst")
        event = Event("asks", 1, program.triggers[("asks", 1)].params)
        assert batch_delta_order(program.maps["m1_base_bids"].defn, event) == 0

    def test_second_order_delta_requires_disjoint_params(self):
        program = finance_program("vwap")
        event = Event("bids", 1, program.triggers[("bids", 1)].params)
        with pytest.raises(AlgebraError):
            second_order_delta(program.maps["m2_bids"].defn, event, event)


class TestSecondOrderPlan:
    def test_vwap_plan_classifies_targets(self):
        program = finance_program("vwap")
        plan = plan_second_order(program.triggers[("bids", 1)], program)
        assert plan is not None
        assert set(plan.order) == {"m3_bids", "q_vwap_sum_0"}
        assert {s.target for s in plan.base} == {"m1_base_bids", "m2_bids"}
        # Restatements are definition re-evaluations over maintained maps:
        # no event parameters, no base relations.
        for statements in plan.restate.values():
            for statement in statements:
                assert statement.reads() <= set(program.maps)

    def test_independent_trigger_has_no_plan(self):
        program = finance_program("psp")
        trigger = program.triggers[("bids", 1)]
        assert plan_second_order(trigger, program) is None

    def test_float_valued_targets_reject_plan(self):
        """Inexact ring values (float column feeding a restated map) must
        fall back: the flush reorders additions."""
        catalog = Catalog.from_script("CREATE STREAM R (A int, B float);")
        program = compile_sql(
            "SELECT sum(r.B) FROM R r "
            "WHERE r.B > 0.5 * (SELECT sum(r1.B) FROM R r1)",
            catalog,
        )
        trigger = program.triggers[("R", 1)]
        assert plan_second_order(trigger, program) is None
        sinks = lower_program(program).batch_sinks[("R", 1)]
        assert {sink for _stmt, sink in sinks} == {"buffered"}

    def test_batch_sinks_report_second_order(self):
        ir = lower_program(finance_program("vwap"))
        sinks = dict(ir.batch_sinks[("bids", 1)])
        assert "second-order" in sinks.values()
        no_second = lower_program(finance_program("vwap"), second_order=False)
        kinds = {s for _st, s in no_second.batch_sinks[("bids", 1)]}
        assert kinds == {"buffered"}

    def test_flush_structure_clears_before_recompute(self):
        """All Clears precede all restate scans, and the restate scans sit
        outside the row loop (once per batch)."""
        ir = lower_program(finance_program("vwap"))
        body = ir.batch_triggers[("bids", 1)].body
        flat = walk_stmts(body)
        clear_positions = [
            i for i, s in enumerate(flat) if isinstance(s, Clear)
        ]
        scan_positions = [
            i for i, s in enumerate(flat) if isinstance(s, ForEachMap)
        ]
        assert clear_positions and scan_positions
        assert max(clear_positions) < min(scan_positions)
        row_loops = [s for s in flat if isinstance(s, ForEachRow)]
        assert row_loops
        assert not any(
            isinstance(s, (ForEachMap, Clear))
            for loop in row_loops
            for s in walk_stmts(loop.body)
        )

    def test_restate_scans_fuse_into_one(self):
        """Two restated aggregates over the same base map share one scan
        (fuse-loops applies across the accumulate-then-flush shape)."""
        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        program = compile_sql(
            "SELECT sum(r.A), sum(r.A * r.B) FROM R r "
            "WHERE r.B > 0.5 * (SELECT sum(r1.B) FROM R r1)",
            catalog,
        )
        ir = lower_program(program)
        body = ir.batch_triggers[("R", 1)].body
        scans = [s for s in walk_stmts(body) if isinstance(s, ForEachMap)]
        assert len(scans) == 1


class TestColumnarBatch:
    def test_round_trip(self):
        rows = [(1, 2, 3), (4, 5, 6), (7, 8, 9)]
        batch = EventBatch("bids", 1, rows)
        assert batch.columns == ([1, 4, 7], [2, 5, 8], [3, 6, 9])
        assert batch.rows == rows
        assert batch.row(1) == (4, 5, 6)
        again = EventBatch.from_columns("bids", 1, batch.columns)
        assert len(again) == 3
        assert again.rows == rows
        assert again.row(2) == (7, 8, 9)
        assert list(again) == [StreamEvent("bids", 1, row) for row in rows]

    def test_transpose_helpers(self):
        rows = [(1, "a"), (2, "b")]
        columns = columns_from_rows(rows)
        assert columns == ([1, 2], ["a", "b"])
        assert rows_from_columns(columns) == rows
        assert columns_from_rows([]) == ()
        assert rows_from_columns(()) == []

    def test_partition_columns_matches_partition_rows(self):
        rows = [(i % 5, i, i * 2) for i in range(23)]
        columns = columns_from_rows(rows)
        for shards in (1, 2, 3, 4):
            by_rows = partition_rows(rows, 0, shards)
            by_columns = partition_columns(columns, 0, shards)
            assert [rows_from_columns(c) for c in by_columns] == [
                [tuple(r) for r in shard] for shard in by_rows
            ]

    def test_generated_batch_loop_prunes_unused_columns(self):
        from repro.codegen.pygen import generate_module

        source = generate_module(finance_program("psp"))
        body = source.split("def on_insert_bids_batch")[1].split("\ndef ")[0]
        # psp reads only the price column of bids: exactly one column list
        # is iterated, no tuple unpacking.
        assert "for ev_bids_price in __cols[3]:" in body


class TestIndexAccounting:
    def test_index_sizes_counted(self):
        program = finance_program("axf")  # per-broker band loops -> indexes
        engine = DeltaEngine(program)
        engine.process_stream(
            [
                StreamEvent("bids", 1, (1, i, i % 3, 10 + i, 5))
                for i in range(8)
            ]
            + [
                StreamEvent("asks", 1, (1, i, i % 3, 11 + i, 4))
                for i in range(8)
            ]
        )
        index_entries = sum(engine.index_sizes().values())
        assert index_entries > 0
        assert engine.total_entries(include_indexes=True) == (
            engine.total_entries() + index_entries
        )
        sized = engine.map_sizes(include_indexes=True)
        plain = engine.map_sizes()
        assert sum(sized.values()) == sum(plain.values()) + index_entries

    def test_interpreted_engine_has_no_indexes(self):
        engine = DeltaEngine(finance_program("axf"), mode="interpreted")
        engine.insert("bids", 1, 1, 1, 10, 5)
        assert engine.index_sizes() == {}
        assert engine.total_entries(include_indexes=True) == engine.total_entries()

    def test_sharded_index_sizes_sum_lanes(self):
        program = finance_program("axf")
        stream = [
            StreamEvent("bids", 1, (1, i, i % 4, 10 + i, 5)) for i in range(12)
        ] + [
            StreamEvent("asks", 1, (1, i, i % 4, 11 + i, 4)) for i in range(12)
        ]
        with ShardedEngine(program, shards=3) as sharded:
            sharded.process_stream(stream, batch_size=64)
            totals = sharded.index_sizes()
            assert sum(totals.values()) > 0
            assert sharded.total_entries(include_indexes=True) == (
                sharded.total_entries() + sum(totals.values())
            )
