"""Runtime tests: engine API, events, views, sources, debugger, profiler."""

import pytest

from repro.errors import EventError, RuntimeEngineError, UnknownStreamError
from repro.compiler import compile_sql, compile_queries
from repro.algebra.translate import translate_sql
from repro.runtime import DeltaEngine, StreamEvent, insert, delete, update
from repro.runtime.debugger import Debugger
from repro.runtime.events import EventBatch, batches, flatten
from repro.runtime.profiler import (
    Profiler,
    map_memory_bytes,
    profile_compilation,
    total_memory_bytes,
)
from repro.runtime.sources import (
    batch_source,
    coerce_row,
    csv_batch_source,
    csv_source,
    list_source,
    relation_loader,
    write_csv,
)
from repro.sql.catalog import Catalog

DDL = """
CREATE STREAM bids (broker_id int, price int, volume int);
CREATE STREAM asks (broker_id int, price int, volume int);
"""
GROUPED = "SELECT broker_id, sum(price * volume) FROM bids GROUP BY broker_id"


@pytest.fixture
def catalog():
    return Catalog.from_script(DDL)


@pytest.fixture
def engine(catalog):
    return DeltaEngine(compile_sql(GROUPED, catalog), mode="compiled")


class TestEvents:
    def test_constructors(self):
        assert insert("bids", 1, 2, 3) == StreamEvent("bids", 1, (1, 2, 3))
        assert delete("bids", 1, 2, 3) == StreamEvent("bids", -1, (1, 2, 3))

    def test_update_is_delete_insert_pair(self):
        removal, addition = update("bids", (1, 2, 3), (1, 2, 9))
        assert removal.sign == -1 and addition.sign == 1

    def test_invalid_sign_rejected(self):
        with pytest.raises(EventError):
            StreamEvent("bids", 0, ())

    def test_flatten_handles_pairs(self):
        events = [insert("bids", 1, 2, 3), update("bids", (1, 2, 3), (1, 2, 4))]
        assert len(list(flatten(events))) == 3


class TestEngineAPI:
    def test_insert_update_delete_cycle(self, engine):
        engine.insert("bids", 1, 100, 5)
        assert engine.results() == [(1, 500)]
        engine.process_stream([update("bids", (1, 100, 5), (1, 100, 9))])
        assert engine.results() == [(1, 900)]
        engine.delete("bids", 1, 100, 9)
        assert engine.results() == []  # group disappears

    def test_unknown_relation_strict(self, catalog):
        strict = DeltaEngine(compile_sql(GROUPED, catalog), strict=True)
        with pytest.raises(UnknownStreamError):
            strict.insert("nope", 1)

    def test_unknown_relation_lenient_is_counted(self, engine):
        engine.insert("nonexistent", 1)
        assert engine.events_skipped == 1

    def test_result_scalar_requires_scalar_query(self, engine):
        engine.insert("bids", 1, 100, 5)
        with pytest.raises(EventError):
            engine.result_scalar()

    def test_multi_query_results_by_name(self, catalog):
        queries = [
            translate_sql(GROUPED, catalog, name="by_broker"),
            translate_sql("SELECT sum(volume) FROM bids", catalog, name="total"),
        ]
        engine = DeltaEngine(compile_queries(queries, catalog))
        engine.insert("bids", 2, 50, 4)
        assert engine.results("total") == [(4,)]
        assert engine.results("by_broker") == [(2, 200)]
        with pytest.raises(RuntimeEngineError):
            engine.results()  # ambiguous

    def test_results_dict(self, engine):
        engine.insert("bids", 3, 10, 2)
        assert engine.results_dict() == [{"broker_id": 3, "sum_1": 20}]

    def test_map_view_is_read_only(self, engine):
        engine.insert("bids", 1, 100, 5)
        root = engine.program.slot_maps["q"][0]
        view = engine.map_view(root)
        assert view[(1,)] == 500
        with pytest.raises(TypeError):
            view[(1,)] = 0

    def test_load_bulk(self, engine):
        count = engine.load("bids", [(1, 10, 1), (1, 20, 2)])
        assert count == 2
        assert engine.results() == [(1, 50)]

    def test_interpreted_and_compiled_agree(self, catalog):
        program = compile_sql(GROUPED, catalog)
        compiled = DeltaEngine(program, mode="compiled")
        interpreted = DeltaEngine(program, mode="interpreted")
        for event in [
            insert("bids", 1, 10, 5),
            insert("bids", 2, 20, 1),
            delete("bids", 1, 10, 5),
        ]:
            compiled.process(event)
            interpreted.process(event)
        assert compiled.results() == interpreted.results()

    def test_unknown_mode_rejected(self, catalog):
        with pytest.raises(EventError):
            DeltaEngine(compile_sql(GROUPED, catalog), mode="quantum")


class TestBatching:
    def test_batches_groups_consecutive_runs(self):
        stream = [
            insert("bids", 1, 10, 1),
            insert("bids", 2, 20, 2),
            delete("bids", 1, 10, 1),
            insert("asks", 3, 30, 3),
            insert("asks", 4, 40, 4),
        ]
        runs = list(batches(stream))
        assert [(b.relation, b.sign, len(b)) for b in runs] == [
            ("bids", 1, 2), ("bids", -1, 1), ("asks", 1, 2),
        ]

    def test_batches_respects_batch_size_cap(self):
        stream = [insert("bids", i, 10, 1) for i in range(5)]
        runs = list(batches(stream, batch_size=2))
        assert [len(b) for b in runs] == [2, 2, 1]

    def test_batches_flattens_update_pairs_and_batches(self):
        stream = [
            update("bids", (1, 10, 1), (1, 20, 1)),
            EventBatch("bids", 1, [(2, 30, 2)]),
        ]
        runs = list(batches(stream))
        assert [(b.relation, b.sign) for b in runs] == [
            ("bids", -1), ("bids", 1),
        ]
        assert runs[1].rows == [(1, 20, 1), (2, 30, 2)]

    def test_batch_size_must_be_positive(self):
        with pytest.raises(EventError):
            list(batches([], batch_size=0))

    def test_event_batch_rejects_bad_sign(self):
        with pytest.raises(EventError):
            EventBatch("bids", 0, [])

    def test_process_batch_matches_per_event(self, catalog):
        program = compile_sql(GROUPED, catalog)
        reference = DeltaEngine(program)
        batched = DeltaEngine(program)
        rows = [(1, 10, 5), (1, 20, 2), (2, 30, 1)]
        for row in rows:
            reference.insert("bids", *row)
        assert batched.process_batch("bids", 1, rows) == 3
        assert batched.maps == reference.maps
        assert batched.events_processed == 3

    def test_process_stream_batches_and_counts_skipped(self, engine):
        stream = [
            insert("bids", 1, 10, 1),
            insert("unknown", 9),
            insert("bids", 1, 20, 2),
        ]
        assert engine.process_stream(stream, batch_size=10) == 3
        assert engine.events_processed == 2
        assert engine.events_skipped == 1
        assert engine.results() == [(1, 50)]

    def test_process_batch_strict_unknown_relation(self, catalog):
        strict = DeltaEngine(compile_sql(GROUPED, catalog), strict=True)
        with pytest.raises(UnknownStreamError):
            strict.process_batch("nope", 1, [(1,)])

    def test_process_batch_static_table_rules(self):
        catalog = Catalog.from_script(
            "CREATE TABLE dim (k int, v int);"
            "CREATE STREAM fact (k int, x int);"
        )
        engine = DeltaEngine(compile_sql(
            "SELECT sum(f.x * d.v) FROM fact f, dim d WHERE f.k = d.k",
            catalog,
        ))
        with pytest.raises(EventError):
            engine.process_batch("dim", -1, [(1, 2)])
        engine.load("dim", [(1, 2), (2, 3)])
        engine.process_batch("fact", 1, [(1, 10), (2, 100)])
        assert engine.result_scalar() == 320
        with pytest.raises(EventError):
            engine.process_batch("dim", 1, [(3, 4)])  # stream started

    def test_empty_batch_is_a_noop(self, engine):
        assert engine.process_batch("bids", 1, []) == 0
        assert engine.events_processed == 0

    def test_interpreted_batch_matches_compiled_batch(self, catalog):
        program = compile_sql(GROUPED, catalog)
        compiled = DeltaEngine(program, mode="compiled")
        interpreted = DeltaEngine(program, mode="interpreted")
        rows = [(1, 10, 5), (2, 20, 1), (1, 10, -5)]
        compiled.process_batch("bids", 1, rows)
        interpreted.process_batch("bids", 1, rows)
        assert compiled.results() == interpreted.results()

    def test_profiler_counts_batched_events(self, catalog):
        profiler = Profiler()
        engine = DeltaEngine(compile_sql(GROUPED, catalog), profiler=profiler)
        engine.process_batch("bids", 1, [(1, 10, 1), (1, 20, 2)])
        assert profiler.events == 2
        assert profiler.events_by_trigger == {"+bids": 2}

    def test_deepcopy_preserves_skip_counter(self, engine):
        import copy

        engine.insert("bids", 1, 10, 1)
        engine.insert("nonexistent", 1)
        clone = copy.deepcopy(engine)
        assert clone.events_skipped == 1
        assert clone.events_processed == 1
        assert clone.maps == engine.maps


class TestViews:
    def test_min_max_rendering(self, catalog):
        sql = "SELECT broker_id, min(price), max(price) FROM bids GROUP BY broker_id"
        engine = DeltaEngine(compile_sql(sql, catalog))
        engine.insert("bids", 1, 30, 1)
        engine.insert("bids", 1, 10, 1)
        engine.insert("bids", 1, 20, 1)
        assert engine.results() == [(1, 10, 30)]
        engine.delete("bids", 1, 10, 1)
        assert engine.results() == [(1, 20, 30)]

    def test_avg_rendering(self, catalog):
        engine = DeltaEngine(
            compile_sql("SELECT avg(price) FROM bids", catalog)
        )
        assert engine.results() == [(0,)]  # empty: division convention
        engine.insert("bids", 1, 10, 1)
        engine.insert("bids", 1, 20, 1)
        assert engine.results() == [(15.0,)]

    def test_zero_sum_group_still_present_via_count(self, catalog):
        sql = "SELECT broker_id, sum(volume) FROM bids GROUP BY broker_id"
        engine = DeltaEngine(compile_sql(sql, catalog))
        engine.insert("bids", 1, 100, 5)
        engine.insert("bids", 1, 100, -5)  # net volume 0, but 2 rows live
        assert engine.results() == [(1, 0)]


class TestSources:
    def test_list_and_loader(self, engine):
        engine.process_stream(list_source([insert("bids", 1, 10, 1)]))
        engine.process_stream(relation_loader("bids", [(1, 20, 2)]))
        assert engine.results() == [(1, 50)]

    def test_csv_round_trip(self, tmp_path, catalog, engine):
        path = tmp_path / "stream.csv"
        events = [
            insert("bids", 1, 100, 5),
            delete("bids", 1, 100, 5),
            insert("bids", 2, 30, 2),
        ]
        assert write_csv(path, events) == 3
        loaded = list(csv_source(path, catalog))
        assert loaded == events
        engine.process_stream(loaded)
        assert engine.results() == [(2, 60)]

    def test_csv_bad_op_raises(self, tmp_path, catalog):
        path = tmp_path / "bad.csv"
        path.write_text("op,relation,values...\n?,bids,1,2,3\n")
        with pytest.raises(EventError):
            list(csv_source(path, catalog))

    def test_csv_arity_check(self, tmp_path, catalog):
        path = tmp_path / "short.csv"
        path.write_text("op,relation,values...\n+,bids,1\n")
        with pytest.raises(EventError):
            list(csv_source(path, catalog))

    def test_coerce_row_types(self, catalog):
        relation = catalog.get("bids")
        assert coerce_row(relation, ["1", "2", "3"]) == (1, 2, 3)

    def test_batch_source_groups_and_feeds_engine(self, engine):
        stream = [insert("bids", 1, 10, 1), insert("bids", 1, 20, 2)]
        delivered = list(batch_source(stream))
        assert len(delivered) == 1 and len(delivered[0]) == 2
        # Batches flatten back to events, so process_stream accepts them.
        engine.process_stream(delivered)
        assert engine.results() == [(1, 50)]

    def test_csv_batch_source_round_trip(self, tmp_path, catalog, engine):
        path = tmp_path / "stream.csv"
        write_csv(path, [insert("bids", 1, 100, 5), insert("bids", 2, 30, 2)])
        (batch,) = list(csv_batch_source(path, catalog))
        assert engine.process_batch(batch.relation, batch.sign, batch.rows) == 2
        assert engine.results() == [(1, 500), (2, 60)]


class TestDebugger:
    def test_step_traces_statements(self, catalog):
        program = compile_sql(GROUPED, catalog)
        debugger = Debugger(program)
        trace = debugger.step(insert("bids", 1, 100, 5))
        assert trace.statements
        touched = [u for s in trace.statements for u in s.updates]
        assert any(value == 500 for _, _, value in touched)

    def test_history_and_watch(self, catalog):
        program = compile_sql(GROUPED, catalog)
        debugger = Debugger(program)
        root = program.slot_maps["q"][0]
        debugger.run([insert("bids", 1, 100, 5), insert("asks", 1, 1, 1)])
        watched = debugger.watch(root)
        assert len(watched) == 1

    def test_map_snapshot(self, catalog):
        program = compile_sql(GROUPED, catalog)
        debugger = Debugger(program)
        root = program.slot_maps["q"][0]
        debugger.step(insert("bids", 2, 10, 3))
        assert debugger.map_snapshot(root) == {(2,): 30}

    def test_sink_receives_traces(self, catalog):
        lines = []
        debugger = Debugger(compile_sql(GROUPED, catalog), sink=lines.append)
        debugger.step(insert("bids", 1, 1, 1))
        assert lines and "bids" in lines[0]


class TestProfiler:
    def test_event_and_statement_counts(self, catalog):
        profiler = Profiler()
        engine = DeltaEngine(
            compile_sql(GROUPED, catalog), mode="interpreted", profiler=profiler
        )
        engine.insert("bids", 1, 10, 1)
        engine.delete("bids", 1, 10, 1)
        assert profiler.events == 2
        assert profiler.events_by_trigger == {"+bids": 1, "-bids": 1}
        assert sum(profiler.map_updates.values()) > 0
        assert "events processed: 2" in profiler.report()

    def test_memory_accounting(self, engine):
        engine.insert("bids", 1, 10, 1)
        sizes = map_memory_bytes(engine.maps)
        assert set(sizes) == set(engine.maps)
        assert total_memory_bytes(engine.maps) == sum(sizes.values())

    def test_profile_compilation_report(self, catalog):
        report = profile_compilation(GROUPED, catalog)
        assert report.map_count >= 1
        assert report.python_source_bytes > 100
        assert report.cpp_source_bytes > 100
        assert report.total_seconds > 0
        assert "generated Python" in report.report()
