"""Crash-recovery properties: kill the engine anywhere, recover, compare.

The recovery invariant (the DBSP framing: Z-set state is a function of
the delta-stream prefix): after a crash at *any* point, snapshot +
WAL-suffix replay must land on a state identical to an uninterrupted
reference engine that applied the logged prefix — and recovering twice
must be idempotent.

Three layers:

* a **hypothesis suite** over random R/S/T streams × batch sizes ×
  columnar on/off × fsync policies × crash points, using in-process crash
  emulation (the probe raises, ``abandon()`` drops unflushed state — the
  WAL writes through unbuffered ``os.write``, so the surviving bytes are
  a SIGKILL's);
* **real SIGKILL subprocesses** via the harness in ``fault_injection.py``
  on the finance and warehouse workloads (including a sharded child);
* the **dead-worker satellite**: a SIGKILLed shard worker must surface as
  a clear :class:`~repro.errors.EventError`, not a hang or raw EOF.
"""

import multiprocessing
import os
import signal
import sys
import tempfile
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

sys.path.insert(0, str(Path(__file__).resolve().parent))
from fault_injection import (  # noqa: E402
    CRASH_LABELS,
    assert_recovery_parity,
    build_program,
    run_to_crash,
    stream_events,
)

from repro.compiler import compile_sql  # noqa: E402
from repro.errors import EventError  # noqa: E402
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent  # noqa: E402
from repro.runtime.durability import (  # noqa: E402
    CrashPoint,
    DurableEngine,
    recover_engine,
)
from repro.runtime.events import batches  # noqa: E402
from repro.sql.catalog import Catalog  # noqa: E402
from tests.strategies import events  # noqa: E402

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

_PROGRAM = None


def _program():
    global _PROGRAM
    if _PROGRAM is None:
        _PROGRAM = compile_sql(
            "SELECT r.B, sum(r.A * s.C) FROM R r, S s WHERE r.B = s.B "
            "GROUP BY r.B",
            Catalog.from_script(CATALOG_DDL),
            name="q",
        )
    return _PROGRAM


class _InjectedCrash(Exception):
    """Stands in for SIGKILL inside the hypothesis loop."""


def _raise_crash():
    raise _InjectedCrash()


def _run_until_crash(directory, stream, batch_size, label, hits, fsync,
                     snapshot_every, columnar):
    """Process the stream under an in-process crash probe.

    Returns True when the crash fired (on-disk state is now exactly what a
    SIGKILL at that point would leave); False when the stream outran it.
    """
    probe = CrashPoint(label, hits=hits, action=_raise_crash)
    engine = DurableEngine(
        _program(), directory, fsync=fsync, snapshot_every=snapshot_every,
        probe=probe, columnar=columnar,
    )
    try:
        engine.process_stream(stream, batch_size=batch_size)
        # Buffered policies flush at close, so the crash can fire there
        # too — that is still a mid-flush SIGKILL, not a clean shutdown.
        engine.close()
    except _InjectedCrash:
        engine.abandon()
        return True
    return False


@settings(max_examples=25, deadline=None)
@given(
    stream=st.lists(events(), min_size=1, max_size=40),
    batch_size=st.integers(min_value=1, max_value=8),
    columnar=st.booleans(),
    fsync=st.sampled_from(["always", "batch", "none"]),
    label=st.sampled_from(sorted(CRASH_LABELS)),
    hits=st.integers(min_value=1, max_value=6),
    snapshot_every=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)
def test_crash_anywhere_recovers_to_reference(
    stream, batch_size, columnar, fsync, label, hits, snapshot_every
):
    stream_events_ = [
        StreamEvent(relation, sign, values)
        for relation, sign, values in stream
    ]
    with tempfile.TemporaryDirectory() as directory:
        _run_until_crash(
            directory, stream_events_, batch_size, label, hits, fsync,
            snapshot_every, columnar,
        )
        engine, lsn = recover_engine(_program(), directory, columnar=columnar)
        # Reference: a fresh engine over the first `lsn` batches — LSNs are
        # assigned 1:1 to the deterministic batch grouping.
        reference = DeltaEngine(_program(), columnar=columnar)
        for index, batch in enumerate(batches(stream_events_, batch_size)):
            if index >= lsn:
                break
            reference._process_batch(batch)
        assert repr(engine.maps) == repr(reference.maps)
        assert engine.results("q") == reference.results("q")
        assert engine.events_processed == reference.events_processed
        assert engine.events_skipped == reference.events_skipped
        # Idempotence: the watermark pins the replay suffix, so recovering
        # again (same LSN) applies nothing twice.
        again, lsn_again = recover_engine(_program(), directory, columnar=columnar)
        assert lsn_again == lsn
        assert repr(again.maps) == repr(engine.maps)


@settings(max_examples=15, deadline=None)
@given(
    stream=st.lists(events(), min_size=1, max_size=30),
    batch_size=st.integers(min_value=1, max_value=8),
    cut=st.integers(min_value=0, max_value=30),
)
def test_reopened_durable_engine_continues_the_log(stream, batch_size, cut):
    """Close mid-stream, reopen, finish: the final state must equal one
    uninterrupted engine (resume-at-the-right-LSN, the restart path)."""
    stream_events_ = [
        StreamEvent(relation, sign, values)
        for relation, sign, values in stream
    ]
    head, tail = stream_events_[:cut], stream_events_[cut:]
    with tempfile.TemporaryDirectory() as directory:
        with DurableEngine(_program(), directory, fsync="batch") as engine:
            engine.process_stream(head, batch_size=batch_size)
        with DurableEngine(_program(), directory) as engine:
            engine.process_stream(tail, batch_size=batch_size)
            recovered_maps = repr(engine.maps)
            results = engine.results("q")
        reference = DeltaEngine(_program())
        reference.process_stream(head, batch_size=batch_size)
        reference.process_stream(tail, batch_size=batch_size)
        assert recovered_maps == repr(reference.maps)
        assert results == reference.results("q")


@settings(max_examples=10, deadline=None)
@given(
    stream=st.lists(events(), min_size=1, max_size=30),
    batch_size=st.integers(min_value=1, max_value=8),
    shards=st.integers(min_value=2, max_value=3),
    label=st.sampled_from(["engine.after_append", "engine.after_apply"]),
    hits=st.integers(min_value=1, max_value=4),
)
def test_crash_recovers_into_any_shard_count(
    stream, batch_size, shards, label, hits
):
    """The WAL is written pre-partition, so one log recovers into a single
    engine or any shard fan-out with identical merged contents."""
    stream_events_ = [
        StreamEvent(relation, sign, values)
        for relation, sign, values in stream
    ]
    with tempfile.TemporaryDirectory() as directory:
        _run_until_crash(
            directory, stream_events_, batch_size, label, hits,
            "always", None, True,
        )
        single, lsn = recover_engine(_program(), directory)
        sharded, lsn_sharded = recover_engine(_program(), directory, shards=shards)
        assert lsn_sharded == lsn
        assert sharded.merged_maps() == single.maps
        assert sharded.results("q") == single.results("q")
        assert sharded.events_processed == single.events_processed


# ---------------------------------------------------------------------------
# Real SIGKILL subprocesses (the harness's reason to exist)
# ---------------------------------------------------------------------------

_SIGKILL_SCENARIOS = [
    # (label, hits, fsync, snapshot_every, columnar)
    ("engine.after_append", 11, "always", None, True),
    ("engine.after_apply", 11, "always", None, False),
    ("wal.mid_frame", 6, "always", None, True),
    ("snapshot.mid_write", 1, "batch", 64, True),
    ("snapshot.before_rename", 1, "batch", 64, True),
]


@pytest.mark.parametrize(
    "label, hits, fsync, snapshot_every, columnar", _SIGKILL_SCENARIOS
)
def test_sigkill_child_recovers_to_reference(
    tmp_path, label, hits, fsync, snapshot_every, columnar
):
    workload, n_events, seed, batch_size = "finance", 300, 2009, 16
    code = run_to_crash(
        tmp_path, label, hits, workload=workload, n_events=n_events,
        seed=seed, batch_size=batch_size, fsync=fsync,
        snapshot_every=snapshot_every, columnar=columnar,
    )
    assert code == -signal.SIGKILL
    engine, lsn = recover_engine(
        build_program(workload), tmp_path, columnar=columnar
    )
    assert lsn > 0
    assert_recovery_parity(
        engine, lsn, workload, n_events, seed, batch_size, columnar=columnar
    )


def test_sigkill_warehouse_child_recovers(tmp_path):
    workload, n_events, seed, batch_size = "warehouse", 3000, 1992, 64
    code = run_to_crash(
        tmp_path, "engine.after_apply", 9, workload=workload,
        n_events=n_events, seed=seed, batch_size=batch_size,
        fsync="always",
    )
    assert code == -signal.SIGKILL
    engine, lsn = recover_engine(build_program(workload), tmp_path)
    assert lsn > 0
    assert_recovery_parity(engine, lsn, workload, n_events, seed, batch_size)


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


@pytest.mark.skipif(not _fork_available(), reason="fork not available")
def test_sigkill_sharded_child_recovers(tmp_path):
    """A sharded durable engine logs pre-partition in the router, so the
    directory a killed sharded run leaves recovers like any other."""
    workload, n_events, seed, batch_size = "finance", 300, 2009, 16
    code = run_to_crash(
        tmp_path, "engine.after_append", 11, workload=workload,
        n_events=n_events, seed=seed, batch_size=batch_size,
        fsync="always", shards=2,
    )
    assert code == -signal.SIGKILL
    engine, lsn = recover_engine(build_program(workload), tmp_path)
    assert lsn > 0
    assert_recovery_parity(engine, lsn, workload, n_events, seed, batch_size)


def test_stream_finishing_before_crash_point_exits_cleanly(tmp_path):
    code = run_to_crash(
        tmp_path, "engine.after_append", 10_000, n_events=100, batch_size=16,
    )
    assert code == 0
    engine, lsn = recover_engine(build_program("finance"), tmp_path)
    assert_recovery_parity(engine, lsn, "finance", 100, 2009, 16)


# ---------------------------------------------------------------------------
# Dead shard workers must fail loudly (not hang, not raw EOFError)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not _fork_available(), reason="fork not available")
def test_dead_shard_worker_raises_clear_error():
    program = _program()
    engine = ShardedEngine(program, shards=2, parallel=True)
    if not engine.parallel:
        pytest.skip("process lanes unavailable")
    try:
        engine.process_batch("R", 1, [(i, i % 3) for i in range(32)])
        engine.sync()
        victim = engine._lanes[0]
        os.kill(victim._proc.pid, signal.SIGKILL)
        victim._proc.join(timeout=10)
        with pytest.raises(EventError) as excinfo:
            engine.sync()
        message = str(excinfo.value)
        assert "shard worker 0" in message
        assert "died mid-operation" in message
        assert "SIGKILL" in message
    finally:
        engine.close()


@pytest.mark.skipif(not _fork_available(), reason="fork not available")
def test_dead_shard_worker_detected_from_reads():
    engine = ShardedEngine(_program(), shards=2, parallel=True)
    if not engine.parallel:
        pytest.skip("process lanes unavailable")
    try:
        engine.process_batch("S", 1, [(i % 4, i) for i in range(32)])
        engine.sync()
        victim = engine._lanes[1]
        os.kill(victim._proc.pid, signal.SIGKILL)
        victim._proc.join(timeout=10)
        with pytest.raises(EventError, match="shard worker 1 .*died"):
            engine.merged_maps()
    finally:
        engine.close()
