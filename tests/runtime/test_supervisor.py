"""Units for the shard-worker supervisor (``ShardSupervisor``).

A supervised :class:`~repro.runtime.engine.ShardedEngine` respawns a
SIGKILLed forked worker and rebuilds its lane state — from the
coordinator-side checkpoint + journal on a plain engine, from snapshot +
WAL-suffix replay when wrapped in a
:class:`~repro.runtime.durability.DurableEngine` — under a
max-restarts-per-window budget.  These tests pin result parity after a
kill, both rebuild modes, budget exhaustion, and that worker *errors*
(as opposed to deaths) still surface loudly.  The randomized
fault-schedule composition lives in
``tests/integration/test_chaos_property.py``.
"""

import os
import signal
import time
from collections import Counter

import pytest

from repro.compiler import compile_sql
from repro.errors import EventError
from repro.runtime import DeltaEngine, ShardedEngine, ShardSupervisor
from repro.runtime.durability import DurableEngine
from repro.sql.catalog import Catalog

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
"""

GROUPED = "SELECT A, sum(B) FROM R GROUP BY A"

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process lanes require POSIX fork"
)


def _program(query=GROUPED):
    return compile_sql(query, Catalog.from_script(CATALOG_DDL), name="q")


def _kill_worker(engine, lane_index: int) -> None:
    """SIGKILL one forked shard worker and wait for the corpse."""
    proc = engine._lanes[lane_index]._proc
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)


def _reference_rows(program, batches):
    reference = DeltaEngine(program)
    for relation, sign, rows in batches:
        reference.process_batch(relation, sign, rows)
    return Counter(reference.results("q"))


def test_supervisor_rejects_bad_options():
    program = _program()
    engine = DeltaEngine(program)
    with pytest.raises(EventError, match="max_restarts"):
        ShardSupervisor(engine, max_restarts=0)
    with pytest.raises(EventError, match="window"):
        ShardSupervisor(engine, window=0)
    with pytest.raises(EventError, match="checkpoint_every"):
        ShardSupervisor(engine, checkpoint_every=0)


def test_supervise_without_parallel_lanes_is_inert():
    engine = ShardedEngine(_program(), shards=2, supervise=True)
    assert engine.supervisor is None  # nothing to supervise in-process
    engine.process_batch("R", 1, [(1, 10)])
    assert engine.results("q")
    engine.close()


@needs_fork
class TestSupervisedLanes:
    def test_journal_rebuild_parity_after_sigkill(self):
        program = _program()
        batches = [("R", 1, [(i % 4, i) for i in range(j, j + 3)])
                   for j in range(0, 60, 3)]
        engine = ShardedEngine(
            program, shards=3, parallel=True,
            supervise=True, checkpoint_every=8,
        )
        assert engine.supervisor is not None
        assert not engine.supervisor.durable
        for index, (relation, sign, rows) in enumerate(batches):
            if index == 12:
                _kill_worker(engine, 1)
            engine.process_batch(relation, sign, rows)
        engine.sync()
        assert Counter(engine.results("q")) == _reference_rows(program, batches)
        assert engine.supervisor.restarts == 1
        (recovery,) = engine.supervisor.recoveries
        assert recovery["mode"] == "journal"
        assert recovery["lane"] == 1
        assert recovery["seconds"] >= 0
        engine.close()

    def test_durable_rebuild_parity_after_sigkill(self, tmp_path):
        program = _program()
        batches = [("R", 1, [(i % 4, i)]) for i in range(40)]
        engine = DurableEngine(
            program, tmp_path, fsync="none",
            shards=3, parallel=True, supervise=True,
        )
        supervisor = engine.engine.supervisor
        assert supervisor is not None and supervisor.durable
        for index, (relation, sign, rows) in enumerate(batches):
            if index == 25:
                _kill_worker(engine.engine, 0)
            engine.process_batch(relation, sign, rows)
        engine.sync()
        assert Counter(engine.results("q")) == _reference_rows(program, batches)
        assert supervisor.restarts == 1
        (recovery,) = supervisor.recoveries
        assert recovery["mode"] == "durable"
        assert recovery["replayed"] >= 25  # whole-engine WAL replay
        engine.close()

    def test_kill_every_lane_over_the_run(self):
        program = _program()
        engine = ShardedEngine(
            program, shards=2, parallel=True,
            supervise=True, max_worker_restarts=4, checkpoint_every=4,
        )
        batches = [("R", 1, [(i % 4, i)]) for i in range(30)]
        for index, (relation, sign, rows) in enumerate(batches):
            if index in (8, 16):
                _kill_worker(engine, index % 2)
            engine.process_batch(relation, sign, rows)
        engine.sync()
        assert Counter(engine.results("q")) == _reference_rows(program, batches)
        assert engine.supervisor.restarts == 2
        engine.close()

    def test_restart_budget_exhaustion_degrades_loudly(self):
        engine = ShardedEngine(
            _program(), shards=2, parallel=True,
            supervise=True, max_worker_restarts=1, restart_window=60.0,
        )
        with pytest.raises(EventError, match="restart budget is exhausted"):
            for i in range(40):
                if i in (5, 10, 15, 20):
                    _kill_worker(engine, 0)
                    _kill_worker(engine, 1)
                engine.process_batch("R", 1, [(i % 4, i)])
                engine.sync()
        engine.close()

    def test_window_expiry_replenishes_the_budget(self):
        engine = ShardedEngine(
            _program(), shards=2, parallel=True,
            supervise=True, max_worker_restarts=1, restart_window=0.2,
        )
        for i in range(2):
            _kill_worker(engine, 0)
            engine.process_batch("R", 1, [(0, i)])
            engine.sync()
            time.sleep(0.3)  # let the previous restart age out
        assert engine.supervisor.restarts == 2
        engine.close()

    def test_worker_errors_still_surface(self):
        # Supervision covers worker *death*, not trigger failures: a
        # malformed row must still raise, without a restart.
        engine = ShardedEngine(
            _program(), shards=2, parallel=True, supervise=True,
        )
        engine.process_batch("R", 1, [(1,)])  # wrong arity
        with pytest.raises(EventError, match=r"shard worker \d+ failed"):
            engine.sync()
        assert engine.supervisor.restarts == 0
        engine.close()

    def test_restore_state_resets_checkpoints(self):
        program = _program()
        engine = ShardedEngine(
            program, shards=2, parallel=True,
            supervise=True, checkpoint_every=4,
        )
        primer = DeltaEngine(program)
        primer.process_batch("R", 1, [(1, 10), (2, 20)])
        engine.restore_state(
            {name: dict(contents) for name, contents in primer.maps.items()},
            events_processed=primer.events_processed,
        )
        _kill_worker(engine, 0)
        engine.process_batch("R", 1, [(3, 30)])
        engine.sync()
        primer.process_batch("R", 1, [(3, 30)])
        assert Counter(engine.results("q")) == Counter(primer.results("q"))
        assert engine.supervisor.restarts == 1
        engine.close()
