"""Units and end-to-end checks for the view-subscription serving layer.

Covers the frame codec, the result-delta algebra, the flush-path
:class:`~repro.runtime.serving.ViewDeltaTap`, the asyncio
:class:`~repro.runtime.serving.ViewServer` with its blocking
:class:`~repro.runtime.serving.SubscriberClient` (snapshot-then-stream
parity, late joiners, protocol errors), the three backpressure policies,
and serving over sharded and durable engines (where delivered LSNs are
the WAL's).  The cross-engine streaming property lives in
``test_serving_property.py``; the CI smoke entry point is
``serving_smoke.py``.
"""

import asyncio
import os
from collections import Counter

import pytest

from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries, compile_sql
from repro.errors import ServingError
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.runtime.durability import DurableEngine
from repro.runtime.serving import (
    ServerThread,
    SubscriberClient,
    ViewDeltaTap,
    ViewServer,
    _ClientState,
    apply_changes,
    decode_frame,
    encode_frame,
    rows_from_snapshot,
)
from repro.runtime.views import result_delta
from repro.sql.catalog import Catalog

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
"""


def _program(query="SELECT A, sum(B) FROM R GROUP BY A"):
    return compile_sql(query, Catalog.from_script(CATALOG_DDL), name="q")


def _two_view_program():
    catalog = Catalog.from_script(CATALOG_DDL)
    return compile_queries(
        [
            translate_sql("SELECT A, sum(B) FROM R GROUP BY A", catalog, name="qr"),
            translate_sql("SELECT B, sum(C) FROM S GROUP BY B", catalog, name="qs"),
        ],
        catalog,
    )


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def test_frame_codec_round_trips():
    message = {"op": "publish", "relation": "R", "rows": [[1, 2.5], [0, -3]]}
    frame = encode_frame(message)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert decode_frame(frame[4:]) == message


def test_frame_codec_rejects_garbage():
    with pytest.raises(ServingError):
        decode_frame(b"\xff\xfe not json")
    with pytest.raises(ServingError):
        decode_frame(b"[1, 2, 3]")  # valid JSON, not an object


# ---------------------------------------------------------------------------
# Delta algebra helpers
# ---------------------------------------------------------------------------


def test_result_delta_asserts_and_retracts():
    previous = Counter({(1, 10): 1, (2, 20): 2})
    current = Counter({(1, 15): 1, (2, 20): 1})
    delta = result_delta(previous, current)
    assert apply_changes(Counter(previous), delta) == current
    assert dict(delta) == {(1, 10): -1, (1, 15): 1, (2, 20): -1}


def test_apply_changes_evicts_zero_rows():
    rows = Counter({(1,): 1})
    apply_changes(rows, [((1,), -1), ((2,), 1)])
    assert dict(rows) == {(2,): 1}


# ---------------------------------------------------------------------------
# The flush-path delta tap
# ---------------------------------------------------------------------------


def test_tap_rejects_unknown_view():
    engine = DeltaEngine(_program())
    with pytest.raises(ServingError, match="unknown view"):
        ViewDeltaTap(engine, views=["nope"])
    tap = ViewDeltaTap(engine)
    with pytest.raises(ServingError, match="unknown view"):
        tap.snapshot("nope")


def test_tap_snapshot_then_deltas_reproduce_results():
    engine = DeltaEngine(_program())
    engine.process_batch("R", 1, [(1, 10), (2, 20)])
    tap = ViewDeltaTap(engine)
    engine.add_batch_listener(tap.on_batch)
    lsn, rows = tap.snapshot("q")
    accumulated = Counter(dict(rows))
    deltas = []
    engine.add_batch_listener(
        lambda batch_lsn, batch: None  # second listener must not disturb
    )
    captured = []
    original = tap.on_batch
    engine.remove_batch_listener(original)

    def recording(batch_lsn, batch):
        captured.append((batch_lsn, original(batch_lsn, batch)))

    engine.add_batch_listener(recording)
    engine.process_batch("R", 1, [(1, 5)])
    engine.process_batch("R", -1, [(2, 20)])
    for batch_lsn, delta in captured:
        assert batch_lsn > lsn
        for changes in delta.values():
            apply_changes(accumulated, changes)
    assert accumulated == Counter(engine.results("q"))


def test_tap_renders_only_affected_views():
    engine = DeltaEngine(_two_view_program())
    tap = ViewDeltaTap(engine)
    assert tap._affected[("R", 1)] == ("qr",)
    assert tap._affected[("S", 1)] == ("qs",)
    engine.add_batch_listener(tap.on_batch)
    deltas = []
    engine.remove_batch_listener(tap.on_batch)
    engine.add_batch_listener(lambda lsn, b: deltas.append(tap.on_batch(lsn, b)))
    engine.process_batch("R", 1, [(1, 10)])
    assert list(deltas[-1]) == ["qr"]
    engine.process_batch("S", 1, [(7, 3)])
    assert list(deltas[-1]) == ["qs"]


def test_tap_view_subset_restriction():
    engine = DeltaEngine(_two_view_program())
    tap = ViewDeltaTap(engine, views=["qs"])
    assert tap.views == ["qs"]
    assert tap._affected[("R", 1)] == ()
    with pytest.raises(ServingError):
        tap.snapshot("qr")


# ---------------------------------------------------------------------------
# Server end-to-end (thread-hosted server, blocking client)
# ---------------------------------------------------------------------------


def test_subscribe_publish_delta_parity():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            snapshot = sub.subscribe("q")
            rows = rows_from_snapshot(snapshot)
            assert rows == Counter()
            with SubscriberClient(handle.host, handle.port) as publisher:
                ack1 = publisher.publish("R", 1, [(1, 10), (2, 20)])
                ack2 = publisher.publish("R", -1, [(2, 20)])
            assert ack2["lsn"] > ack1["lsn"]
            for frame in sub.drain_deltas("q", ack2["lsn"]):
                assert frame["lsn"] > snapshot["lsn"]
                apply_changes(rows, frame["changes"])
            assert rows == Counter(engine.results("q"))


def test_late_joiner_snapshot_then_stream():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        handle.publish("R", 1, [(1, 10), (2, 20)])
        with SubscriberClient(handle.host, handle.port) as late:
            snapshot = late.subscribe("q")
            rows = rows_from_snapshot(snapshot)
            # The snapshot already reflects the pre-subscription history.
            assert rows == Counter(engine.results("q"))
            _, lsn = handle.publish("R", 1, [(1, 5)])
            for frame in late.drain_deltas("q", lsn):
                apply_changes(rows, frame["changes"])
            assert rows == Counter(engine.results("q"))


def test_unsubscribe_stops_deltas():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            sub.subscribe("q")
            sub.unsubscribe("q")
            handle.publish("R", 1, [(1, 10)])
            lsn = sub.ping()
            assert lsn >= 1
            assert not sub._pending  # no delta slipped through after the pong


def test_protocol_errors_are_reported():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as client:
            with pytest.raises(ServingError, match="unknown view"):
                client.subscribe("nope")
            # The connection survives an error frame.
            client._send({"op": "warble"})
            message = client.recv()
            assert message["type"] == "error"
            assert "unknown protocol op" in message["message"]
            client._send({"op": "publish", "rows": [[1]]})  # no relation
            message = client.recv()
            assert message["type"] == "error"
            assert "malformed publish" in message["message"]
            assert client.subscribe("q")["lsn"] == 0


def test_publish_stream_groups_batches():
    engine = DeltaEngine(_program())
    events = [StreamEvent("R", 1, (i % 3, i)) for i in range(20)]
    reference = DeltaEngine(_program())
    for event in events:
        reference.process(event)
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            snapshot = sub.subscribe("q")
            rows = rows_from_snapshot(snapshot)
            consumed = handle.publish_stream(events, batch_size=4)
            assert consumed == len(events)
            for frame in sub.drain_deltas("q", sub.ping()):
                apply_changes(rows, frame["changes"])
            assert rows == Counter(reference.results("q"))


def test_sharded_engine_serving_parity():
    program = _program()
    engine = ShardedEngine(program, shards=2)
    reference = DeltaEngine(program)
    events = [StreamEvent("R", 1, (i % 4, i)) for i in range(32)]
    for event in events:
        reference.process(event)
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            rows = rows_from_snapshot(sub.subscribe("q"))
            handle.publish_stream(events, batch_size=8)
            for frame in sub.drain_deltas("q", sub.ping()):
                apply_changes(rows, frame["changes"])
            assert rows == Counter(reference.results("q"))


def test_durable_engine_serves_wal_lsns(tmp_path):
    engine = DurableEngine(_program(), tmp_path, fsync="batch")
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            rows = rows_from_snapshot(sub.subscribe("q"))
            acks = [
                handle.publish("R", 1, [(1, 10)]),
                handle.publish("R", 1, [(2, 20)]),
                handle.publish("R", -1, [(1, 10)]),
            ]
            lsns = [lsn for _, lsn in acks]
            # Served LSNs are the durability LSNs: one WAL frame per
            # batch, strictly increasing, ending at the log's tail.
            assert lsns == sorted(lsns)
            assert lsns[-1] == engine._wal.last_lsn
            frames = sub.drain_deltas("q", lsns[-1])
            assert [frame["lsn"] for frame in frames] == lsns
            for frame in frames:
                apply_changes(rows, frame["changes"])
            assert rows == Counter(engine.results("q"))
    engine.close()


def test_server_rejects_bad_options():
    engine = DeltaEngine(_program())
    with pytest.raises(ServingError, match="backpressure"):
        ViewServer(engine, backpressure="panic")
    with pytest.raises(ServingError, match="queue_frames"):
        ViewServer(engine, queue_frames=1)
    with pytest.raises(ServingError, match="unknown view"):
        ViewServer(engine, views=["nope"])


# ---------------------------------------------------------------------------
# Backpressure policies (event-loop level, no sockets)
# ---------------------------------------------------------------------------


class _FakeWriter:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def _delta_frame(view, lsn, ts, changes):
    return {
        "type": "delta",
        "view": view,
        "lsn": lsn,
        "ts": ts,
        "changes": [[list(row), weight] for row, weight in changes],
    }


def test_drop_policy_disconnects_slow_client():
    async def scenario():
        server = ViewServer(
            DeltaEngine(_program()), backpressure="drop", queue_frames=2
        )
        client = _ClientState(_FakeWriter(), queue_frames=2, name="slow")
        server._clients.add(client)
        server._subscribers["q"].add(client)
        client.views.add("q")
        for lsn in (1, 2):  # fill the bounded queue
            assert await server._deliver(client, _delta_frame("q", lsn, 0.0, []))
        assert not await server._deliver(client, _delta_frame("q", 3, 0.0, []))
        assert client.dropped
        assert client.writer.closed
        assert server.clients_dropped == 1
        assert client not in server._subscribers["q"]
        # Further deliveries to a dropped client are no-ops.
        assert not await server._deliver(client, _delta_frame("q", 4, 0.0, []))

    asyncio.run(scenario())


def test_coalesce_policy_merges_queued_deltas():
    async def scenario():
        server = ViewServer(
            DeltaEngine(_program()), backpressure="coalesce", queue_frames=2
        )
        client = _ClientState(_FakeWriter(), queue_frames=2, name="laggy")
        await server._deliver(
            client, _delta_frame("q", 1, 10.0, [((1, 10), 1), ((2, 20), 1)])
        )
        await server._deliver(
            client, _delta_frame("q", 2, 11.0, [((1, 10), -1), ((1, 15), 1)])
        )
        # Queue is full: the third delta forces a merge of all three.
        assert await server._deliver(
            client, _delta_frame("q", 3, 12.0, [((2, 20), -1), ((2, 25), 1)])
        )
        frames = []
        while not client.queue.empty():
            frames.append(client.queue.get_nowait())
        assert len(frames) == 1
        merged = frames[0]
        assert merged["coalesced"] is True
        assert merged["lsn"] == 3  # newest LSN wins...
        assert merged["ts"] == 10.0  # ...oldest timestamp is preserved
        rows = apply_changes(Counter(), [(tuple(r), w) for r, w in merged["changes"]])
        assert rows == Counter({(1, 15): 1, (2, 25): 1})

    asyncio.run(scenario())


def test_coalesce_preserves_non_delta_frames_in_order():
    async def scenario():
        server = ViewServer(
            DeltaEngine(_program()), backpressure="coalesce", queue_frames=2
        )
        client = _ClientState(_FakeWriter(), queue_frames=2, name="laggy")
        await server._deliver(client, {"type": "pong", "lsn": 1})
        await server._deliver(client, _delta_frame("q", 2, 5.0, [((1, 1), 1)]))
        await server._deliver(client, _delta_frame("q", 3, 6.0, [((1, 1), -1)]))
        frames = []
        while not client.queue.empty():
            frames.append(client.queue.get_nowait())
        # The pong survives; the two deltas cancelled out entirely.
        assert frames == [{"type": "pong", "lsn": 1}]

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Resume-from-LSN (memory ring, WAL shadow replay, resume_gap)
# ---------------------------------------------------------------------------


def _collect(handle, client, until_lsn):
    frames = client.drain_deltas("q", until_lsn)
    return frames


def test_resume_from_memory_ring_replays_exact_suffix():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            sub.subscribe("q")
            for i in range(10):
                handle.publish("R", 1, [(i % 3, i)])
            deltas = sub.drain_deltas("q", sub.ping())
            mid = deltas[4]["lsn"]
            with SubscriberClient(handle.host, handle.port) as resumer:
                reply = resumer.subscribe("q", from_lsn=mid)
                assert reply["type"] == "resumed"
                assert reply["from_lsn"] == mid
                replayed = [resumer.recv() for _ in range(reply["replayed"])]
                want = [d for d in deltas if d["lsn"] > mid]
                assert [(f["lsn"], f["changes"]) for f in replayed] == [
                    (f["lsn"], f["changes"]) for f in want
                ]
                # The resumed subscriber is live: new deltas flow.
                _, lsn = handle.publish("R", 1, [(0, 100)])
                live = resumer.drain_deltas("q", lsn)
                assert live and live[-1]["lsn"] == lsn


def test_resume_at_current_lsn_replays_nothing():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        handle.publish("R", 1, [(1, 10)])
        with SubscriberClient(handle.host, handle.port) as sub:
            tip = sub.ping()
            reply = sub.subscribe("q", from_lsn=tip)
            assert reply["type"] == "resumed"
            assert reply["replayed"] == 0


def test_resume_from_wal_when_history_evicted(tmp_path):
    engine = DurableEngine(_program(), tmp_path, fsync="none")
    with ServerThread(engine, history_frames=2) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            sub.subscribe("q")
            for i in range(20):
                handle.publish("R", 1, [(i % 4, i)])
            deltas = sub.drain_deltas("q", sub.ping())
            early = deltas[2]["lsn"]
            # Far below the 2-frame ring floor: served from the WAL.
            assert early < handle.server._history_floor["q"]
            with SubscriberClient(handle.host, handle.port) as resumer:
                reply = resumer.subscribe("q", from_lsn=early)
                assert reply["type"] == "resumed"
                replayed = [resumer.recv() for _ in range(reply["replayed"])]
                want = [d for d in deltas if d["lsn"] > early]
                assert [(f["lsn"], f["changes"]) for f in replayed] == [
                    (f["lsn"], f["changes"]) for f in want
                ]
                assert all(f.get("replayed") for f in replayed)
    engine.close()


def test_resume_gap_on_non_durable_engine():
    engine = DeltaEngine(_program())
    with ServerThread(engine, history_frames=2) as handle:
        for i in range(10):
            handle.publish("R", 1, [(i, i)])
        with SubscriberClient(handle.host, handle.port) as sub:
            reply = sub.subscribe("q", from_lsn=1)
            assert reply["type"] == "resume_gap"
            assert reply["requested_lsn"] == 1
            # A gapped subscriber is NOT registered; the fallback
            # snapshot-then-stream subscribe works on the same socket.
            rows = rows_from_snapshot(sub.subscribe("q"))
            assert rows == Counter(engine.results("q"))


def test_resume_gap_after_wal_truncation(tmp_path):
    engine = DurableEngine(
        _program(), tmp_path, fsync="none", segment_bytes=256
    )
    with ServerThread(engine, history_frames=2) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            sub.subscribe("q")
            for i in range(30):
                handle.publish("R", 1, [(i % 4, i)])
            deltas = sub.drain_deltas("q", sub.ping())
            early = deltas[2]["lsn"]
            engine.snapshot()  # retires covered WAL segments
            assert engine.oldest_replayable_lsn() > early + 1
            with SubscriberClient(handle.host, handle.port) as resumer:
                reply = resumer.subscribe("q", from_lsn=early)
                assert reply["type"] == "resume_gap"
    engine.close()


def test_resume_from_the_future_is_a_gap():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        handle.publish("R", 1, [(1, 10)])
        with SubscriberClient(handle.host, handle.port) as sub:
            reply = sub.subscribe("q", from_lsn=999)
            assert reply["type"] == "resume_gap"


def test_resume_rejects_bad_from_lsn():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            sub._send({"op": "subscribe", "view": "q", "from_lsn": "nope"})
            message = sub.recv()
            assert message["type"] == "error"
            assert "from_lsn" in message["message"]


def test_server_rejects_bad_resume_options():
    engine = DeltaEngine(_program())
    with pytest.raises(ServingError, match="history_frames"):
        ViewServer(engine, history_frames=-1)
    with pytest.raises(ServingError, match="idle_timeout"):
        ViewServer(engine, idle_timeout=0)


def test_tap_seeds_lsn_from_engine_clock(tmp_path):
    engine = DurableEngine(_program(), tmp_path, fsync="none")
    for i in range(5):
        engine.process_batch("R", 1, [(i, i)])
    # A tap over an already-running durable engine starts at the WAL
    # tip, not 0 — a restarted server keeps serving meaningful LSNs.
    tap = ViewDeltaTap(engine)
    assert tap.lsn == engine.lsn > 0
    engine.close()


# ---------------------------------------------------------------------------
# Idle timeout and torn-frame hardening
# ---------------------------------------------------------------------------


def test_idle_subscriber_evicted_with_timeout_frame():
    import time as _time

    engine = DeltaEngine(_program())
    with ServerThread(engine, idle_timeout=0.2) as handle:
        with SubscriberClient(handle.host, handle.port, timeout=5) as sub:
            sub.subscribe("q")
            _time.sleep(0.8)
            with pytest.raises(ServingError, match="evicted|closed"):
                # Either the buffered timeout frame raises, or the
                # closed socket does.
                sub.ping()
        assert handle.server.clients_timed_out == 1
        # An active client (pinging within the window) is never evicted.
        with SubscriberClient(handle.host, handle.port, timeout=5) as sub:
            sub.subscribe("q")
            for _ in range(6):
                _time.sleep(0.1)
                sub.ping()
        assert handle.server.clients_timed_out == 1


def test_torn_frame_mid_length_prefix_is_reaped_quietly():
    import socket as _socket
    import struct as _struct

    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        raw = _socket.create_connection((handle.host, handle.port))
        raw.sendall(b"\x00\x00")  # half a length prefix, then vanish
        raw.close()
        raw = _socket.create_connection((handle.host, handle.port))
        body = b'{"op": "ping"}'
        raw.sendall(_struct.pack(">I", len(body) + 10) + body)  # torn body
        raw.close()
        # The server survives both: a well-behaved client still works.
        with SubscriberClient(handle.host, handle.port) as sub:
            sub.subscribe("q")
            _, lsn = handle.publish("R", 1, [(1, 1)])
            assert sub.drain_deltas("q", lsn)
        assert not handle.server._clients or all(
            not c.dropped for c in handle.server._clients
        )


def test_oversized_length_prefix_gets_error_frame():
    import socket as _socket
    import struct as _struct

    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        raw = _socket.create_connection((handle.host, handle.port))
        raw.settimeout(5)
        raw.sendall(_struct.pack(">I", 2**31))  # absurd frame length
        prefix = raw.recv(4)
        (length,) = _struct.unpack(">I", prefix)
        message = decode_frame(raw.recv(length))
        assert message["type"] == "error"
        assert "exceeds" in message["message"]
        raw.close()


# ---------------------------------------------------------------------------
# ReconnectingSubscriber
# ---------------------------------------------------------------------------


def test_reconnecting_subscriber_survives_server_restart(tmp_path):
    import random as _random

    from repro.runtime.durability import recover_engine
    from repro.runtime.serving import ReconnectingSubscriber

    program = _program()
    engine = DurableEngine(program, tmp_path, fsync="none")
    handle = ServerThread(engine)
    handle.start()
    sub = ReconnectingSubscriber(
        handle.host, handle.port, "q",
        backoff_base=0.01, rng=_random.Random(7),
    )
    try:
        for i in range(5):
            handle.publish("R", 1, [(i % 2, i)])
        sub.pump_until(engine.lsn)
        handle.stop()
        engine.close()
        # Hard restart: recover the directory, rebind the same port.
        engine2, _ = recover_engine(program, tmp_path), None
        engine2 = DurableEngine(program, tmp_path, fsync="none")
        handle2 = ServerThread(engine2, port=handle.port)
        handle2.start()
        for i in range(5, 10):
            handle2.publish("R", 1, [(i % 2, i)])
        sub.pump_until(engine2.lsn, deadline=30)
        reference = DeltaEngine(program)
        for i in range(10):
            reference.process_batch("R", 1, [(i % 2, i)])
        assert sub.rows == Counter(reference.results("q"))
        assert sub.reconnects >= 1
        assert sub.resume_gaps == 0
        # Idempotent delivery: strictly increasing LSNs, no synthetics.
        lsns = [f["lsn"] for f in sub.deltas]
        assert lsns == sorted(set(lsns))
        assert not any(f.get("synthesized") for f in sub.deltas)
        handle2.stop()
        engine2.close()
    finally:
        sub.close()


def test_reconnecting_subscriber_resume_gap_fallback(tmp_path):
    import random as _random

    from repro.runtime.serving import ReconnectingSubscriber

    program = _program()
    engine = DurableEngine(
        program, tmp_path, fsync="none", segment_bytes=256
    )
    handle = ServerThread(engine, history_frames=2)
    handle.start()
    sub = ReconnectingSubscriber(
        handle.host, handle.port, "q",
        backoff_base=0.01, rng=_random.Random(1),
    )
    try:
        for i in range(5):
            handle.publish("R", 1, [(i % 2, i)])
        sub.pump_until(engine.lsn)
        handle.stop()
        # Progress while disconnected, then truncate the missed suffix.
        for i in range(5, 30):
            engine.process_batch("R", 1, [(i % 2, i)])
        engine.snapshot()
        handle2 = ServerThread(engine, history_frames=2, port=handle.port)
        handle2.start()
        sub.pump_until(engine.lsn, deadline=30)
        reference = DeltaEngine(program)
        for i in range(30):
            reference.process_batch("R", 1, [(i % 2, i)])
        # State parity holds even though the sequence needed a synthetic
        # bridge (the truncated suffix is unrecoverable by design).
        assert sub.rows == Counter(reference.results("q"))
        assert sub.resume_gaps >= 1
        assert any(f.get("synthesized") for f in sub.deltas)
        handle2.stop()
    finally:
        sub.close()
        engine.close()


def test_reconnecting_subscriber_budget_exhaustion():
    import random as _random

    from repro.runtime.serving import ReconnectingSubscriber

    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        host, port = handle.host, handle.port
    # Server gone: the initial connect must exhaust the budget and raise.
    with pytest.raises(ServingError, match="reconnect budget exhausted"):
        ReconnectingSubscriber(
            host, port, "q",
            max_reconnects=2, backoff_base=0.001, rng=_random.Random(3),
        )


# ---------------------------------------------------------------------------
# Restart-in-place
# ---------------------------------------------------------------------------


def test_restart_in_place_reclaims_port_with_lingering_clients():
    # Stopping a server must genuinely close its sockets: a new server
    # can rebind the same port immediately, even though a subscriber
    # that never read its frames (half-closed connection) is attached.
    engine = DeltaEngine(_program())
    handle = ServerThread(engine)
    handle.start()
    port = handle.port
    laggard = SubscriberClient(handle.host, port, timeout=5)
    laggard.subscribe("q")
    for i in range(10):
        handle.publish("R", 1, [(i % 3, i)])
    handle.stop()
    try:
        handle2 = ServerThread(engine, port=port)
        handle2.start()  # must not raise EADDRINUSE
        assert handle2.port == port
        with SubscriberClient(handle2.host, port, timeout=5) as sub:
            assert sub.subscribe("q")["type"] == "snapshot"
        handle2.stop()
    finally:
        laggard.close()


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork isolation requires POSIX fork"
)
def test_forked_children_do_not_inherit_serving_sockets():
    # A shard worker forked while the server runs (supervisor respawn)
    # must not keep duplicates of the listen/connection fds: the copies
    # would hold the port bound after stop() and keep closed client
    # connections half-alive.
    import multiprocessing

    engine = DeltaEngine(_program())
    handle = ServerThread(engine)
    handle.start()
    port = handle.port
    with SubscriberClient(handle.host, port, timeout=5) as sub:
        sub.subscribe("q")
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=child.send, args=(os.getpid(),), daemon=True)
        proc.start()
        parent.recv()
        # While the child lives, stop and rebind: only possible if the
        # child closed its inherited serving fds after the fork.
        handle.stop()
        handle2 = ServerThread(engine, port=port)
        handle2.start()
        assert handle2.port == port
        handle2.stop()
        proc.join(timeout=10)
