"""Units and end-to-end checks for the view-subscription serving layer.

Covers the frame codec, the result-delta algebra, the flush-path
:class:`~repro.runtime.serving.ViewDeltaTap`, the asyncio
:class:`~repro.runtime.serving.ViewServer` with its blocking
:class:`~repro.runtime.serving.SubscriberClient` (snapshot-then-stream
parity, late joiners, protocol errors), the three backpressure policies,
and serving over sharded and durable engines (where delivered LSNs are
the WAL's).  The cross-engine streaming property lives in
``test_serving_property.py``; the CI smoke entry point is
``serving_smoke.py``.
"""

import asyncio
from collections import Counter

import pytest

from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries, compile_sql
from repro.errors import ServingError
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.runtime.durability import DurableEngine
from repro.runtime.serving import (
    ServerThread,
    SubscriberClient,
    ViewDeltaTap,
    ViewServer,
    _ClientState,
    apply_changes,
    decode_frame,
    encode_frame,
    rows_from_snapshot,
)
from repro.runtime.views import result_delta
from repro.sql.catalog import Catalog

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
"""


def _program(query="SELECT A, sum(B) FROM R GROUP BY A"):
    return compile_sql(query, Catalog.from_script(CATALOG_DDL), name="q")


def _two_view_program():
    catalog = Catalog.from_script(CATALOG_DDL)
    return compile_queries(
        [
            translate_sql("SELECT A, sum(B) FROM R GROUP BY A", catalog, name="qr"),
            translate_sql("SELECT B, sum(C) FROM S GROUP BY B", catalog, name="qs"),
        ],
        catalog,
    )


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def test_frame_codec_round_trips():
    message = {"op": "publish", "relation": "R", "rows": [[1, 2.5], [0, -3]]}
    frame = encode_frame(message)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert decode_frame(frame[4:]) == message


def test_frame_codec_rejects_garbage():
    with pytest.raises(ServingError):
        decode_frame(b"\xff\xfe not json")
    with pytest.raises(ServingError):
        decode_frame(b"[1, 2, 3]")  # valid JSON, not an object


# ---------------------------------------------------------------------------
# Delta algebra helpers
# ---------------------------------------------------------------------------


def test_result_delta_asserts_and_retracts():
    previous = Counter({(1, 10): 1, (2, 20): 2})
    current = Counter({(1, 15): 1, (2, 20): 1})
    delta = result_delta(previous, current)
    assert apply_changes(Counter(previous), delta) == current
    assert dict(delta) == {(1, 10): -1, (1, 15): 1, (2, 20): -1}


def test_apply_changes_evicts_zero_rows():
    rows = Counter({(1,): 1})
    apply_changes(rows, [((1,), -1), ((2,), 1)])
    assert dict(rows) == {(2,): 1}


# ---------------------------------------------------------------------------
# The flush-path delta tap
# ---------------------------------------------------------------------------


def test_tap_rejects_unknown_view():
    engine = DeltaEngine(_program())
    with pytest.raises(ServingError, match="unknown view"):
        ViewDeltaTap(engine, views=["nope"])
    tap = ViewDeltaTap(engine)
    with pytest.raises(ServingError, match="unknown view"):
        tap.snapshot("nope")


def test_tap_snapshot_then_deltas_reproduce_results():
    engine = DeltaEngine(_program())
    engine.process_batch("R", 1, [(1, 10), (2, 20)])
    tap = ViewDeltaTap(engine)
    engine.add_batch_listener(tap.on_batch)
    lsn, rows = tap.snapshot("q")
    accumulated = Counter(dict(rows))
    deltas = []
    engine.add_batch_listener(
        lambda batch_lsn, batch: None  # second listener must not disturb
    )
    captured = []
    original = tap.on_batch
    engine.remove_batch_listener(original)

    def recording(batch_lsn, batch):
        captured.append((batch_lsn, original(batch_lsn, batch)))

    engine.add_batch_listener(recording)
    engine.process_batch("R", 1, [(1, 5)])
    engine.process_batch("R", -1, [(2, 20)])
    for batch_lsn, delta in captured:
        assert batch_lsn > lsn
        for changes in delta.values():
            apply_changes(accumulated, changes)
    assert accumulated == Counter(engine.results("q"))


def test_tap_renders_only_affected_views():
    engine = DeltaEngine(_two_view_program())
    tap = ViewDeltaTap(engine)
    assert tap._affected[("R", 1)] == ("qr",)
    assert tap._affected[("S", 1)] == ("qs",)
    engine.add_batch_listener(tap.on_batch)
    deltas = []
    engine.remove_batch_listener(tap.on_batch)
    engine.add_batch_listener(lambda lsn, b: deltas.append(tap.on_batch(lsn, b)))
    engine.process_batch("R", 1, [(1, 10)])
    assert list(deltas[-1]) == ["qr"]
    engine.process_batch("S", 1, [(7, 3)])
    assert list(deltas[-1]) == ["qs"]


def test_tap_view_subset_restriction():
    engine = DeltaEngine(_two_view_program())
    tap = ViewDeltaTap(engine, views=["qs"])
    assert tap.views == ["qs"]
    assert tap._affected[("R", 1)] == ()
    with pytest.raises(ServingError):
        tap.snapshot("qr")


# ---------------------------------------------------------------------------
# Server end-to-end (thread-hosted server, blocking client)
# ---------------------------------------------------------------------------


def test_subscribe_publish_delta_parity():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            snapshot = sub.subscribe("q")
            rows = rows_from_snapshot(snapshot)
            assert rows == Counter()
            with SubscriberClient(handle.host, handle.port) as publisher:
                ack1 = publisher.publish("R", 1, [(1, 10), (2, 20)])
                ack2 = publisher.publish("R", -1, [(2, 20)])
            assert ack2["lsn"] > ack1["lsn"]
            for frame in sub.drain_deltas("q", ack2["lsn"]):
                assert frame["lsn"] > snapshot["lsn"]
                apply_changes(rows, frame["changes"])
            assert rows == Counter(engine.results("q"))


def test_late_joiner_snapshot_then_stream():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        handle.publish("R", 1, [(1, 10), (2, 20)])
        with SubscriberClient(handle.host, handle.port) as late:
            snapshot = late.subscribe("q")
            rows = rows_from_snapshot(snapshot)
            # The snapshot already reflects the pre-subscription history.
            assert rows == Counter(engine.results("q"))
            _, lsn = handle.publish("R", 1, [(1, 5)])
            for frame in late.drain_deltas("q", lsn):
                apply_changes(rows, frame["changes"])
            assert rows == Counter(engine.results("q"))


def test_unsubscribe_stops_deltas():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            sub.subscribe("q")
            sub.unsubscribe("q")
            handle.publish("R", 1, [(1, 10)])
            lsn = sub.ping()
            assert lsn >= 1
            assert not sub._pending  # no delta slipped through after the pong


def test_protocol_errors_are_reported():
    engine = DeltaEngine(_program())
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as client:
            with pytest.raises(ServingError, match="unknown view"):
                client.subscribe("nope")
            # The connection survives an error frame.
            client._send({"op": "warble"})
            message = client.recv()
            assert message["type"] == "error"
            assert "unknown protocol op" in message["message"]
            client._send({"op": "publish", "rows": [[1]]})  # no relation
            message = client.recv()
            assert message["type"] == "error"
            assert "malformed publish" in message["message"]
            assert client.subscribe("q")["lsn"] == 0


def test_publish_stream_groups_batches():
    engine = DeltaEngine(_program())
    events = [StreamEvent("R", 1, (i % 3, i)) for i in range(20)]
    reference = DeltaEngine(_program())
    for event in events:
        reference.process(event)
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            snapshot = sub.subscribe("q")
            rows = rows_from_snapshot(snapshot)
            consumed = handle.publish_stream(events, batch_size=4)
            assert consumed == len(events)
            for frame in sub.drain_deltas("q", sub.ping()):
                apply_changes(rows, frame["changes"])
            assert rows == Counter(reference.results("q"))


def test_sharded_engine_serving_parity():
    program = _program()
    engine = ShardedEngine(program, shards=2)
    reference = DeltaEngine(program)
    events = [StreamEvent("R", 1, (i % 4, i)) for i in range(32)]
    for event in events:
        reference.process(event)
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            rows = rows_from_snapshot(sub.subscribe("q"))
            handle.publish_stream(events, batch_size=8)
            for frame in sub.drain_deltas("q", sub.ping()):
                apply_changes(rows, frame["changes"])
            assert rows == Counter(reference.results("q"))


def test_durable_engine_serves_wal_lsns(tmp_path):
    engine = DurableEngine(_program(), tmp_path, fsync="batch")
    with ServerThread(engine) as handle:
        with SubscriberClient(handle.host, handle.port) as sub:
            rows = rows_from_snapshot(sub.subscribe("q"))
            acks = [
                handle.publish("R", 1, [(1, 10)]),
                handle.publish("R", 1, [(2, 20)]),
                handle.publish("R", -1, [(1, 10)]),
            ]
            lsns = [lsn for _, lsn in acks]
            # Served LSNs are the durability LSNs: one WAL frame per
            # batch, strictly increasing, ending at the log's tail.
            assert lsns == sorted(lsns)
            assert lsns[-1] == engine._wal.last_lsn
            frames = sub.drain_deltas("q", lsns[-1])
            assert [frame["lsn"] for frame in frames] == lsns
            for frame in frames:
                apply_changes(rows, frame["changes"])
            assert rows == Counter(engine.results("q"))
    engine.close()


def test_server_rejects_bad_options():
    engine = DeltaEngine(_program())
    with pytest.raises(ServingError, match="backpressure"):
        ViewServer(engine, backpressure="panic")
    with pytest.raises(ServingError, match="queue_frames"):
        ViewServer(engine, queue_frames=1)
    with pytest.raises(ServingError, match="unknown view"):
        ViewServer(engine, views=["nope"])


# ---------------------------------------------------------------------------
# Backpressure policies (event-loop level, no sockets)
# ---------------------------------------------------------------------------


class _FakeWriter:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def _delta_frame(view, lsn, ts, changes):
    return {
        "type": "delta",
        "view": view,
        "lsn": lsn,
        "ts": ts,
        "changes": [[list(row), weight] for row, weight in changes],
    }


def test_drop_policy_disconnects_slow_client():
    async def scenario():
        server = ViewServer(
            DeltaEngine(_program()), backpressure="drop", queue_frames=2
        )
        client = _ClientState(_FakeWriter(), queue_frames=2, name="slow")
        server._clients.add(client)
        server._subscribers["q"].add(client)
        client.views.add("q")
        for lsn in (1, 2):  # fill the bounded queue
            assert await server._deliver(client, _delta_frame("q", lsn, 0.0, []))
        assert not await server._deliver(client, _delta_frame("q", 3, 0.0, []))
        assert client.dropped
        assert client.writer.closed
        assert server.clients_dropped == 1
        assert client not in server._subscribers["q"]
        # Further deliveries to a dropped client are no-ops.
        assert not await server._deliver(client, _delta_frame("q", 4, 0.0, []))

    asyncio.run(scenario())


def test_coalesce_policy_merges_queued_deltas():
    async def scenario():
        server = ViewServer(
            DeltaEngine(_program()), backpressure="coalesce", queue_frames=2
        )
        client = _ClientState(_FakeWriter(), queue_frames=2, name="laggy")
        await server._deliver(
            client, _delta_frame("q", 1, 10.0, [((1, 10), 1), ((2, 20), 1)])
        )
        await server._deliver(
            client, _delta_frame("q", 2, 11.0, [((1, 10), -1), ((1, 15), 1)])
        )
        # Queue is full: the third delta forces a merge of all three.
        assert await server._deliver(
            client, _delta_frame("q", 3, 12.0, [((2, 20), -1), ((2, 25), 1)])
        )
        frames = []
        while not client.queue.empty():
            frames.append(client.queue.get_nowait())
        assert len(frames) == 1
        merged = frames[0]
        assert merged["coalesced"] is True
        assert merged["lsn"] == 3  # newest LSN wins...
        assert merged["ts"] == 10.0  # ...oldest timestamp is preserved
        rows = apply_changes(Counter(), [(tuple(r), w) for r, w in merged["changes"]])
        assert rows == Counter({(1, 15): 1, (2, 25): 1})

    asyncio.run(scenario())


def test_coalesce_preserves_non_delta_frames_in_order():
    async def scenario():
        server = ViewServer(
            DeltaEngine(_program()), backpressure="coalesce", queue_frames=2
        )
        client = _ClientState(_FakeWriter(), queue_frames=2, name="laggy")
        await server._deliver(client, {"type": "pong", "lsn": 1})
        await server._deliver(client, _delta_frame("q", 2, 5.0, [((1, 1), 1)]))
        await server._deliver(client, _delta_frame("q", 3, 6.0, [((1, 1), -1)]))
        frames = []
        while not client.queue.empty():
            frames.append(client.queue.get_nowait())
        # The pong survives; the two deltas cancelled out entirely.
        assert frames == [{"type": "pong", "lsn": 1}]

    asyncio.run(scenario())
