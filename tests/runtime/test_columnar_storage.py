"""Columnar map storage: unit edge cases and the dict-parity property.

Three layers:

* :class:`ColumnarMap` alone must behave exactly like a dict — same
  contents, same insertion-order iteration under churn, same key
  equality — while packing values into typed columns (unit suite:
  deletes to zero, mixed-type key/value promotion, int64 overflow,
  spill-to-dict on non-conforming keys, deepcopy/pickle/copy);
* the compiler's storage plan must classify maps soundly (scalar →
  dict; exact-int / always-float / unproven value classes);
* engines running with ``columnar=True`` (the default) must be
  *bit-identical* to ``columnar=False`` — the hypothesis property pins
  compiled/interpreted/native × batch sizes × shards 1–4 on random
  streams (the native lane degrades to pure columnar on toolchain-less
  hosts, so the property is meaningful everywhere), and
  a deterministic family pins the finance workloads the benchmarks
  measure, comparing ``repr`` of every entry so ``5`` vs ``5.0`` or
  ``-0.0`` drift would fail.
"""

import copy
import pickle
import random
from functools import lru_cache
from types import MappingProxyType

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.translate import translate_sql
from repro.compiler import analyze_storage, compile_queries, compile_sql
from repro.runtime import ColumnarMap, DeltaEngine, ShardedEngine, StreamEvent
from repro.runtime.storage import _INT64_MAX
from repro.sql.catalog import Catalog
from tests.strategies import events


# ---------------------------------------------------------------------------
# ColumnarMap unit suite
# ---------------------------------------------------------------------------


class TestColumnarMapBasics:
    def test_set_get_len_contains(self):
        m = ColumnarMap(2, "q")
        m[(1, 2)] = 5
        m[(3, 4)] = -7
        assert m[(1, 2)] == 5
        assert m.get((3, 4)) == -7
        assert m.get((9, 9), 0) == 0
        assert (1, 2) in m and (9, 9) not in m
        assert len(m) == 2

    def test_requires_positive_arity(self):
        with pytest.raises(ValueError):
            ColumnarMap(0, "q")

    def test_delete_to_zero_eviction_cycle(self):
        """The canonical GMR update: entries reaching zero disappear."""
        m = ColumnarMap(1, "q")
        for delta in (3, -1, -2):
            cur = m.get((7,), 0) + delta
            if cur == 0:
                m.pop((7,), None)
            else:
                m[(7,)] = cur
        assert (7,) not in m and len(m) == 0
        # add() is the same update in one probe
        assert m.add((7,), 3) == 3
        assert m.add((7,), -3) == 0
        assert (7,) not in m and len(m) == 0
        assert m.add((7,), 0) == 0 and len(m) == 0

    def test_pop_semantics(self):
        m = ColumnarMap(1, "q")
        m[(1,)] = 2
        assert m.pop((1,)) == 2
        with pytest.raises(KeyError):
            m.pop((1,))
        assert m.pop((1,), "sentinel") == "sentinel"
        with pytest.raises(KeyError):
            del m[(1,)]

    def test_insertion_order_matches_dict_under_churn(self):
        m, d = ColumnarMap(1, "q"), {}
        rng = random.Random(42)
        for _ in range(4000):
            key = (rng.randrange(60),)
            if rng.random() < 0.4 and key in d:
                d.pop(key)
                m.pop(key)
            else:
                value = rng.randrange(1, 9)
                d[key] = value
                m[key] = value
        assert list(m.items()) == list(d.items())
        assert list(m) == list(d)
        assert list(m.values()) == list(d.values())
        assert m == d and d == dict(m)

    def test_compaction_preserves_order(self):
        m = ColumnarMap(1, "q")
        for i in range(300):
            m[(i,)] = i + 1
        for i in range(0, 300, 2):  # delete enough to trigger compaction
            m.pop((i,), None)
        assert list(m) == [(i,) for i in range(1, 300, 2)]
        m[(0,)] = 99  # re-insert lands at the end, like a dict
        assert list(m)[-1] == (0,)

    def test_int_float_key_equivalence(self):
        """2 and 2.0 are the same dict key; same for columnar storage."""
        m = ColumnarMap(1, "q")
        m[(2,)] = 10
        assert m[(2.0,)] == 10
        m[(2.0,)] = 11  # overwrite keeps the originally stored key
        assert list(m) == [(2,)] and m[(2,)] == 11

    def test_views_are_sized_and_reiterable(self):
        m = ColumnarMap(1, "q")
        for i in range(5):
            m[(i,)] = i + 1
        items, keys, values = m.items(), m.keys(), m.values()
        assert len(items) == len(keys) == len(values) == 5
        assert list(items) == list(items)  # fresh iterator per pass
        assert list(values) == list(values) == [1, 2, 3, 4, 5]
        assert ((0,), 1) in items and (0,) in keys
        assert keys | {(99,)} == {(i,) for i in range(5)} | {(99,)}
        m.pop((0,), None)  # views are live
        assert len(items) == 4 and (0,) not in keys

    def test_popitem_is_lifo_like_dict(self):
        m, d = ColumnarMap(1, "q"), {}
        for i in range(6):
            m[(i,)] = i + 1
            d[(i,)] = i + 1
        m.pop((5,), None), d.pop((5,), None)
        assert m.popitem() == d.popitem() == ((4,), 5)
        assert m.popitem() == d.popitem() == ((3,), 4)
        empty = ColumnarMap(1, "q")
        with pytest.raises(KeyError):
            empty.popitem()

    def test_clear_resets_packed_columns(self):
        m = ColumnarMap(1, "d")
        m[(1,)] = 2.5
        m.clear()
        assert len(m) == 0 and list(m.items()) == []
        m[(3,)] = 4.5  # still usable, still packed
        assert m[(3,)] == 4.5 and not m.spilled


class TestColumnarMapTyping:
    def test_value_overflow_promotes_not_truncates(self):
        m = ColumnarMap(1, "q")
        m[(1,)] = 3
        m[(2,)] = _INT64_MAX + 10
        assert m[(1,)] == 3
        assert m[(2,)] == _INT64_MAX + 10

    def test_int_in_float_column_promotes(self):
        """A float-planned map receiving an int must not coerce it."""
        m = ColumnarMap(1, "d")
        m[(1,)] = 2.5
        m[(2,)] = 3  # not a float: column promotes to boxed
        assert m[(2,)] == 3 and type(m[(2,)]) is int
        assert m[(1,)] == 2.5 and type(m[(1,)]) is float

    def test_bool_values_keep_identity(self):
        m = ColumnarMap(1, "q")
        m[(1,)] = True
        assert m[(1,)] is True

    def test_float_values_bit_exact(self):
        import struct

        m = ColumnarMap(1, "d")
        for i, value in enumerate((0.1 + 0.2, -0.0, 1e-310)):
            m[(i,)] = value
            assert struct.pack("d", m[(i,)]) == struct.pack("d", value)

    def test_mixed_type_key_column_promotes(self):
        m = ColumnarMap(1, "q")
        m[(1,)] = 10
        m[("x",)] = 20  # int column sees a string: boxed promotion
        m[(2.5,)] = 30
        assert dict(m) == {(1,): 10, ("x",): 20, (2.5,): 30}
        assert not m.spilled  # promotion is per-column, not a spill


class TestColumnarMapSpill:
    def test_wrong_arity_key_spills_to_dict(self):
        m = ColumnarMap(2, "q")
        m[(1, 2)] = 3
        m[(1, 2, 3)] = 4  # non-conforming: whole map falls back
        assert m.spilled
        assert dict(m) == {(1, 2): 3, (1, 2, 3): 4}
        assert list(m.items())[0] == ((1, 2), 3)  # order preserved

    def test_non_tuple_key_spills(self):
        m = ColumnarMap(1, "q")
        m[(1,)] = 1
        m["scalar"] = 2
        assert m.spilled and m["scalar"] == 2 and m[(1,)] == 1

    def test_nan_key_spills(self):
        nan = float("nan")
        m = ColumnarMap(1, "d")
        m[(nan,)] = 1
        assert m.spilled
        assert m[(nan,)] == 1  # same-object nan lookup works via the dict

    def test_reads_with_bad_keys_do_not_spill(self):
        m = ColumnarMap(2, "q")
        m[(1, 2)] = 3
        assert m.get((1, 2, 3), "d") == "d"
        assert m.get("x", "d") == "d"
        assert (1,) not in m
        assert not m.spilled


class TestColumnarMapCopying:
    def _populated(self):
        m = ColumnarMap(2, "q")
        for i in range(50):
            m[(i, i * 2)] = i + 1
        for i in range(0, 50, 3):
            m.pop((i, i * 2), None)
        return m

    def test_deepcopy_is_independent(self):
        m = self._populated()
        clone = copy.deepcopy(m)
        assert list(clone.items()) == list(m.items())
        clone[(999, 0)] = 1
        clone[(1, 2)] = 42
        assert (999, 0) not in m and m.get((1, 2)) != 42

    def test_copy_preserves_spill(self):
        m = ColumnarMap(1, "q")
        m["bad-key"] = 1
        clone = m.copy()
        assert clone.spilled and dict(clone) == dict(m)

    def test_pickle_roundtrip(self):
        m = self._populated()
        revived = pickle.loads(pickle.dumps(m))
        assert isinstance(revived, ColumnarMap)
        assert list(revived.items()) == list(m.items())
        revived[(7, 14)] = 123  # still writable/packed
        assert revived[(7, 14)] == 123

    def test_mapping_proxy_view(self):
        m = self._populated()
        proxy = MappingProxyType(m)
        assert proxy == dict(m)
        assert proxy.get((1, 2)) == m.get((1, 2))

    def test_storage_bytes_beats_dict_on_numeric_maps(self):
        import sys

        m = ColumnarMap(1, "q")
        d = {}
        for i in range(5000):
            m[(i,)] = i * 3 + 1
            d[(i,)] = i * 3 + 1
        dict_bytes = sys.getsizeof(d) + sum(
            sys.getsizeof(k) + sys.getsizeof(v) + sys.getsizeof(k[0])
            for k, v in d.items()
        )
        assert m.storage_bytes() * 2 < dict_bytes


# ---------------------------------------------------------------------------
# Storage plan analysis
# ---------------------------------------------------------------------------


class TestStoragePlan:
    def test_scalar_maps_stay_dict(self):
        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        program = compile_sql("SELECT sum(A*B) FROM R", catalog, name="q")
        plan = analyze_storage(program)
        scalar = plan.storage_for("q_q_sum_0")
        assert not scalar.columnar and scalar.arity == 0

    def test_int_proof_on_integer_streams(self):
        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        program = compile_sql(
            "SELECT a, sum(b) FROM R r GROUP BY a", catalog, name="q"
        )
        plan = analyze_storage(program)
        for name, storage in plan.maps.items():
            if storage.arity:
                assert storage.label == "columnar[int]", name

    def test_float_column_values_prove_float(self):
        catalog = Catalog.from_script("CREATE STREAM R (A int, P float);")
        program = compile_sql(
            "SELECT a, sum(p) FROM R r GROUP BY a", catalog, name="q"
        )
        labels = {
            name: s.label for name, s in analyze_storage(program).maps.items()
        }
        assert labels["q_q_sum_1"] == "columnar[float]"
        # count over a float stream is still provably int (sharper than
        # the optimiser's whole-relation float exclusion)
        assert labels["q_q___count"] == "columnar[int]"

    def test_plan_is_memoised_and_stamped_into_ir(self):
        from repro.ir import lower_program

        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        program = compile_sql(
            "SELECT a, sum(b) FROM R r GROUP BY a", catalog, name="q"
        )
        assert analyze_storage(program) is analyze_storage(program)
        ir = lower_program(program)
        storages = {decl.storage for decl in ir.maps.values()}
        assert "columnar[int]" in storages

    def test_describe_lists_every_map(self):
        catalog = Catalog.from_script("CREATE STREAM R (A int, B int);")
        program = compile_sql(
            "SELECT a, sum(b) FROM R r GROUP BY a", catalog, name="q"
        )
        text = analyze_storage(program).describe()
        assert text.startswith("== storage plan ==")
        for name in program.maps:
            assert f"map {name}:" in text


# ---------------------------------------------------------------------------
# Engine integration and the parity property
# ---------------------------------------------------------------------------

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

QUERIES = {
    "grouped": "SELECT A, sum(B) FROM R GROUP BY A",
    "join": (
        "SELECT r.B, sum(r.A * s.C) FROM R r, S s "
        "WHERE r.B = s.B GROUP BY r.B"
    ),
    "chain": (
        "SELECT sum(r.A * t.D) FROM R r, S s, T t "
        "WHERE r.B = s.B AND s.C = t.C"
    ),
}


@lru_cache(maxsize=None)
def _program(query_name: str):
    catalog = Catalog.from_script(CATALOG_DDL)
    translated = translate_sql(QUERIES[query_name], catalog, name="q")
    return compile_queries([translated], catalog)


def _exact_items(maps):
    """Map contents with full value/key identity (``repr`` separates
    ``5`` from ``5.0`` and ``0.0`` from ``-0.0``)."""
    return {
        name: sorted((repr(k), repr(v)) for k, v in contents.items())
        for name, contents in maps.items()
    }


def test_engine_constructs_storage_from_plan():
    program = _program("grouped")
    engine = DeltaEngine(program)
    plan = analyze_storage(program)
    for name, contents in engine.maps.items():
        if plan.storage_for(name).columnar:
            assert isinstance(contents, ColumnarMap)
        else:
            assert type(contents) is dict
    ablated = DeltaEngine(program, columnar=False)
    assert all(type(c) is dict for c in ablated.maps.values())


def test_engine_deepcopy_preserves_storage_kind():
    program = _program("grouped")
    engine = DeltaEngine(program)
    engine.insert("R", 1, 2)
    clone = copy.deepcopy(engine)
    assert clone.maps == engine.maps
    assert any(isinstance(c, ColumnarMap) for c in clone.maps.values())
    clone.insert("R", 5, 6)  # clone stays independent and functional
    assert clone.maps != engine.maps


def test_generated_header_stamps_storage_plan():
    from repro.codegen.pygen import generate_module

    program = _program("grouped")
    source = generate_module(program, columnar=True)
    assert "== storage plan ==" in source
    assert "columnar[int]" in source
    assert "rendered for: columnar storage (add() applies)" in source
    assert ".add(" in source
    agnostic = generate_module(program, columnar=False)
    assert "rendered for: storage-agnostic (mapping protocol)" in agnostic
    assert ".add(" not in agnostic


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted", "native"])
@settings(max_examples=20, deadline=None)
@given(
    stream=st.lists(events(), max_size=40),
    shards=st.integers(min_value=1, max_value=4),
    batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
def test_columnar_equals_dict_storage(query_name, mode, stream, shards, batch_size):
    """Columnar maps must be bit-identical to dict maps across executors."""
    program = _program(query_name)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    reference = DeltaEngine(program, mode=mode, columnar=False)
    for event in stream_events:
        reference.process(event)

    columnar = DeltaEngine(program, mode=mode, columnar=True)
    columnar.process_stream(stream_events, batch_size=batch_size)
    assert _exact_items(columnar.maps) == _exact_items(reference.maps)
    assert columnar.results() == reference.results()

    sharded = ShardedEngine(
        program, shards=shards, mode=mode, columnar=True
    )
    sharded.process_stream(stream_events, batch_size=batch_size)
    assert _exact_items(sharded.merged_maps()) == _exact_items(reference.maps)
    assert sharded.results() == reference.results()


@pytest.mark.parametrize("query_name", ["vwap", "axf", "bsp", "psp", "mst"])
@pytest.mark.parametrize("mode", ["compiled", "interpreted", "native"])
def test_finance_workloads_columnar_identical(query_name, mode):
    """Deterministic family over the benchmark streams (batched runs)."""
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    stream = list(OrderBookGenerator(seed=2009).events(600))
    maps_seen = []
    for columnar in (False, True):
        program = compile_sql(
            FINANCE_QUERIES[query_name], finance_catalog(), name="q"
        )
        engine = DeltaEngine(program, mode=mode, columnar=columnar)
        engine.process_stream(stream, batch_size=37)
        maps_seen.append(_exact_items(engine.maps))
    assert maps_seen[0] == maps_seen[1]


@pytest.mark.parametrize("query_name", ["bbo", "act"])
@pytest.mark.parametrize("mode", ["compiled", "interpreted", "native"])
def test_nonlinear_finance_columnar_identical(query_name, mode):
    """The non-linear workloads: Finalize-maintained auxiliary caches are
    plain dicts in every plan, but the occurrence maps they read may be
    columnar — parity must hold either way (native mode keeps the
    Finalize-fed maps python-side and still runs)."""
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    stream = list(OrderBookGenerator(seed=2009).events(600))
    maps_seen = []
    for columnar in (False, True):
        program = compile_sql(
            FINANCE_QUERIES[query_name], finance_catalog(), name="q"
        )
        engine = DeltaEngine(program, mode=mode, columnar=columnar)
        engine.process_stream(stream, batch_size=37)
        maps_seen.append(_exact_items(engine.maps))
    assert maps_seen[0] == maps_seen[1]


def test_float_stream_parity_bit_identical():
    """Float-valued maps: packed 'd' columns must not disturb a single bit."""
    catalog = Catalog.from_script("CREATE STREAM R (A int, P float);")
    sql = "SELECT a, sum(p) FROM R r GROUP BY a"
    rng = random.Random(11)
    stream = []
    live = []
    for _ in range(400):
        if live and rng.random() < 0.3:
            row = live.pop(rng.randrange(len(live)))
            stream.append(StreamEvent("R", -1, row))
        else:
            row = (rng.randrange(6), rng.random() * 100 - 50)
            live.append(row)
            stream.append(StreamEvent("R", 1, row))
    maps_seen = []
    for columnar in (False, True):
        program = compile_sql(sql, catalog, name="q")
        engine = DeltaEngine(program, columnar=columnar)
        engine.process_stream(stream, batch_size=16)
        maps_seen.append(_exact_items(engine.maps))
    assert maps_seen[0] == maps_seen[1]


def test_sharded_parallel_workers_ship_columnar_maps():
    """Worker processes pickle ColumnarMap lane state over pipes."""
    program = _program("grouped")
    reference = DeltaEngine(program, columnar=False)
    with ShardedEngine(program, shards=2, parallel=True) as sharded:
        if not sharded.parallel:
            pytest.skip("fork unavailable on this platform")
        for a in range(40):
            reference.insert("R", a % 7, a)
            sharded.insert("R", a % 7, a)
        assert _exact_items(sharded.merged_maps()) == _exact_items(
            reference.maps
        )


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_parallel_workers_native_mode(shards):
    """Forked workers each build their own kernel attach; merged maps must
    stay repr-identical to the serial dict reference (and the maps crossing
    the result pipes arrive as pure ColumnarMaps, re-attached per worker)."""
    program = _program("join")
    reference = DeltaEngine(program, columnar=False)
    with ShardedEngine(
        program, shards=shards, mode="native", parallel=True
    ) as sharded:
        if not sharded.parallel:
            pytest.skip("fork unavailable on this platform")
        rng = random.Random(13)
        for i in range(120):
            relation = ("R", "S")[i % 2]
            row = (rng.randrange(9), rng.randrange(9))
            reference.insert(relation, *row)
            sharded.insert(relation, *row)
        assert _exact_items(sharded.merged_maps()) == _exact_items(
            reference.maps
        )
        assert sharded.results() == reference.results()
