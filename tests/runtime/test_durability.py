"""Units for the durability layer: frame codec, WAL, snapshots, recovery.

The crash-driven end-to-end properties live in
``test_fault_injection.py``; this module pins the pieces in isolation —
the column-packed frame codec round-trips every value shape an
:class:`~repro.runtime.events.EventBatch` can carry, the WAL survives
torn tails and rotation, snapshots are atomic and fall back past corrupt
files, and recovery refuses foreign programs.
"""

import os
from pathlib import Path

import pytest

from repro.compiler import compile_sql
from repro.errors import (
    DurabilityError,
    EventError,
    RecoveryError,
    UnknownStreamError,
    WalCorruptionError,
)
from repro.runtime import DeltaEngine, ShardedEngine
from repro.runtime.durability import (
    DurableEngine,
    SnapshotStore,
    WriteAheadLog,
    decode_batch_payload,
    encode_batch_payload,
    program_fingerprint,
    recover_engine,
)
from repro.runtime.events import EventBatch
from repro.sql.catalog import Catalog

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
"""


def _program(query="SELECT A, sum(B) FROM R GROUP BY A"):
    return compile_sql(query, Catalog.from_script(CATALOG_DDL), name="q")


# ---------------------------------------------------------------------------
# Frame codec round-trips (EventBatch -> WAL payload -> EventBatch)
# ---------------------------------------------------------------------------


def _round_trip(batch: EventBatch) -> EventBatch:
    payload = encode_batch_payload(
        batch.relation, batch.sign, batch.columns, len(batch)
    )
    relation, sign, columns = decode_batch_payload(payload)
    return EventBatch.from_columns(relation, sign, columns)


@pytest.mark.parametrize(
    "rows",
    [
        [(1, 10), (2, 20), (3, 30)],                      # all-int columns
        [(1.5, -2.25), (0.0, 3.125)],                     # all-float columns
        [("ask", "ibm"), ("bid", "msft")],                # all-str columns
        [(1, 2.5, "x"), (2, 3.5, "yy")],                  # mixed column kinds
        [(1, "α"), (2, "βγ")],                            # non-ASCII strings
        [(True, 1), (False, 0)],                          # bools stay bools
        [(1, 2), (2.5, 3), ("x", 4)],                     # mixed within a column
        [(2**70, 1), (-(2**70), 2)],                      # beyond int64
        [(None, 1), ((1, 2), 2)],                         # arbitrary objects
    ],
)
def test_codec_round_trips_rows(rows):
    batch = EventBatch("R", 1, rows)
    back = _round_trip(batch)
    assert back.relation == "R" and back.sign == 1
    assert back.rows == [tuple(row) for row in rows]
    # Types survive exactly (2 stays int, True stays bool, 2.0 stays float).
    for original, decoded in zip(batch.rows, back.rows):
        assert [type(v) for v in original] == [type(v) for v in decoded]


def test_codec_round_trips_delete_sign_and_relation():
    batch = EventBatch("some_relation", -1, [(7, 8)])
    back = _round_trip(batch)
    assert back.sign == -1
    assert back.relation == "some_relation"
    assert back.rows == [(7, 8)]


def test_codec_round_trips_empty_batch():
    relation, sign, columns = decode_batch_payload(
        encode_batch_payload("R", 1, ((), ()), 0)
    )
    assert (relation, sign) == ("R", 1)
    assert [list(c) for c in columns] == [[], []]
    assert EventBatch.from_columns(relation, sign, columns).rows == []


def test_codec_round_trips_zero_arity_rows():
    batch = EventBatch("R", 1, [(), (), ()])
    payload = encode_batch_payload("R", 1, batch.columns, 3)
    relation, sign, columns = decode_batch_payload(payload)
    assert (relation, sign, columns) == ("R", 1, ())


def test_codec_via_columns_matches_via_rows():
    rows = [(1, 2.0, "a"), (3, 4.0, "b")]
    via_rows = EventBatch("R", 1, rows)
    via_columns = EventBatch.from_columns("R", 1, via_rows.columns)
    assert _round_trip(via_rows).rows == _round_trip(via_columns).rows == rows


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------


def _append_n(wal: WriteAheadLog, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        wal.append("R", 1, ([i], [i * 10]), 1)


def test_wal_append_replay_round_trip(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none") as wal:
        _append_n(wal, 5)
        wal.append("S", -1, ([1, 2], [3, 4]), 2)
    frames = list(WriteAheadLog.replay(tmp_path))
    assert [lsn for lsn, *_ in frames] == [1, 2, 3, 4, 5, 6]
    assert frames[0][1:] == ("R", 1, ([0], [0]))
    assert frames[-1][1:] == ("S", -1, ([1, 2], [3, 4]))


def test_wal_replay_after_lsn_filters_prefix(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        _append_n(wal, 10)
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path, after_lsn=7)] == [8, 9, 10]
    assert list(WriteAheadLog.replay(tmp_path, after_lsn=10)) == []


def test_wal_resumes_at_next_lsn(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        _append_n(wal, 3)
        assert wal.last_lsn == 3
    with WriteAheadLog(tmp_path) as wal:
        assert wal.last_lsn == 3
        _append_n(wal, 2, start=3)
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == [1, 2, 3, 4, 5]


def test_wal_segment_rotation(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none", segment_bytes=256) as wal:
        _append_n(wal, 30)
    segments = sorted(tmp_path.glob("wal-*.log"))
    assert len(segments) > 1
    # Segment file names carry their first LSN; replay stitches them.
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == list(range(1, 31))


def test_wal_torn_tail_truncated_on_open(tmp_path):
    with WriteAheadLog(tmp_path, fsync="always") as wal:
        _append_n(wal, 6)
    segment = sorted(tmp_path.glob("wal-*.log"))[-1]
    os.truncate(segment, segment.stat().st_size - 3)  # tear the last frame
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == [1, 2, 3, 4, 5]
    with WriteAheadLog(tmp_path) as wal:  # open repairs the tail in place
        assert wal.last_lsn == 5
        _append_n(wal, 1, start=5)
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == [1, 2, 3, 4, 5, 6]


def test_wal_corrupt_tail_crc_truncated(tmp_path):
    with WriteAheadLog(tmp_path, fsync="always") as wal:
        _append_n(wal, 4)
    segment = sorted(tmp_path.glob("wal-*.log"))[-1]
    data = bytearray(segment.read_bytes())
    data[-2] ^= 0xFF  # flip a bit inside the final frame's CRC
    segment.write_bytes(bytes(data))
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == [1, 2, 3]


def test_wal_interior_corruption_raises(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none", segment_bytes=256) as wal:
        _append_n(wal, 30)
    first = sorted(tmp_path.glob("wal-*.log"))[0]
    data = bytearray(first.read_bytes())
    data[40] ^= 0xFF  # damage a frame in a non-final segment
    first.write_bytes(bytes(data))
    with pytest.raises(WalCorruptionError):
        list(WriteAheadLog.replay(tmp_path))


def test_wal_ensure_lsn_leaves_forward_gap(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        _append_n(wal, 2)
        wal.ensure_lsn(10)  # a snapshot got ahead of the durable log
        assert wal.append("R", 1, ([9], [9]), 1) == 11
    lsns = [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)]
    assert lsns == [1, 2, 11]  # gap-tolerant, strictly increasing


def test_wal_abandon_drops_buffered_frames(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="batch")
    _append_n(wal, 3)
    wal.sync()
    _append_n(wal, 2, start=3)  # buffered, never synced
    wal.abandon()
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == [1, 2, 3]


def test_wal_rejects_unknown_policy_and_closed_appends(tmp_path):
    with pytest.raises(DurabilityError):
        WriteAheadLog(tmp_path, fsync="sometimes")
    wal = WriteAheadLog(tmp_path)
    wal.close()
    with pytest.raises(DurabilityError):
        wal.append("R", 1, ([1],), 1)


def test_wal_truncate_before_removes_covered_segments(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none", segment_bytes=256) as wal:
        _append_n(wal, 30)
        wal.sync()
        before = sorted(tmp_path.glob("wal-*.log"))
        assert len(before) > 2
        removed = wal.truncate_before(wal.last_lsn)
        assert removed  # everything but the active segment retired
        survivors = sorted(tmp_path.glob("wal-*.log"))
        assert survivors == [before[-1]]
        # Replay from the watermark still works over the survivor.
        assert list(WriteAheadLog.replay(tmp_path, after_lsn=30)) == []
        _append_n(wal, 2, start=30)
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path, after_lsn=30)] == [31, 32]


def test_wal_truncate_before_keeps_uncovered_suffix(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none", segment_bytes=256) as wal:
        _append_n(wal, 30)
        wal.sync()
        segments = sorted(tmp_path.glob("wal-*.log"))
        # A watermark mid-log must keep the segment holding watermark+1
        # and everything after it.
        watermark = 10
        wal.truncate_before(watermark)
        survivors = sorted(tmp_path.glob("wal-*.log"))
        assert survivors and len(survivors) <= len(segments)
        lsns = [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path, after_lsn=watermark)]
        assert lsns == list(range(watermark + 1, 31))


def test_wal_truncate_before_never_removes_active_segment(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none") as wal:  # one segment only
        _append_n(wal, 5)
        wal.sync()
        assert wal.truncate_before(wal.last_lsn) == []
        assert len(list(tmp_path.glob("wal-*.log"))) == 1
        _append_n(wal, 1, start=5)
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)] == [1, 2, 3, 4, 5, 6]


def test_durable_snapshot_truncates_wal_and_recovers(tmp_path):
    program = _program()
    with DurableEngine(
        program, tmp_path, fsync="batch", segment_bytes=256
    ) as engine:
        for i in range(40):
            engine.process_batch("R", 1, [(i % 4, i)])
        engine.snapshot()
        after_first = len(list(tmp_path.glob("wal-*.log")))
        # First checkpoint retires every sealed segment: with a single
        # retained snapshot its own LSN is the oldest watermark.
        assert after_first == 1
        for i in range(40, 80):
            engine.process_batch("R", 1, [(i % 4, i)])
        grown = len(list(tmp_path.glob("wal-*.log")))
        engine.snapshot()
        # Second checkpoint truncates only to the *oldest retained*
        # snapshot (keep=2), so the suffix the fallback path may replay
        # survives.
        assert len(list(tmp_path.glob("wal-*.log"))) <= grown
        expected = engine.results("q")
    recovered, lsn = recover_engine(program, tmp_path)
    assert recovered.results("q") == expected
    assert lsn == 80


def test_durable_truncation_preserves_corrupt_snapshot_fallback(tmp_path):
    program = _program()
    with DurableEngine(
        program, tmp_path, fsync="batch", segment_bytes=256
    ) as engine:
        for i in range(30):
            engine.process_batch("R", 1, [(i % 3, i)])
        engine.snapshot()
        for i in range(30, 60):
            engine.process_batch("R", 1, [(i % 3, i)])
        engine.snapshot()
        expected = engine.results("q")
    snapshots = sorted(tmp_path.glob("snapshot-*.snap"))
    assert len(snapshots) == 2
    # Corrupt the newest snapshot: recovery must fall back to the older
    # one and replay the WAL suffix truncation left in place.
    data = bytearray(snapshots[-1].read_bytes())
    data[len(data) // 2] ^= 0xFF
    snapshots[-1].write_bytes(bytes(data))
    recovered, _ = recover_engine(program, tmp_path)
    assert recovered.results("q") == expected


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def test_snapshot_save_load_round_trip(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save(5, {"maps": {"m": {(1,): 2}}, "events_processed": 7})
    state = store.load_latest()
    assert state["lsn"] == 5
    assert state["maps"] == {"m": {(1,): 2}}
    assert state["events_processed"] == 7


def test_snapshot_latest_wins_and_prunes(tmp_path):
    store = SnapshotStore(tmp_path, keep=2)
    for lsn in (1, 2, 3):
        store.save(lsn, {"maps": {}, "n": lsn})
    assert store.load_latest()["n"] == 3
    assert len(store.paths()) == 2  # keep=2 pruned the oldest


def test_snapshot_corrupt_latest_falls_back(tmp_path):
    store = SnapshotStore(tmp_path, keep=3)
    store.save(1, {"maps": {"m": {(1,): 1}}})
    store.save(2, {"maps": {"m": {(1,): 2}}})
    latest = store.paths()[-1]
    data = bytearray(latest.read_bytes())
    data[len(data) // 2] ^= 0xFF
    latest.write_bytes(bytes(data))
    assert store.load_latest()["maps"] == {"m": {(1,): 1}}


def test_snapshot_tmp_files_are_invisible_and_pruned(tmp_path):
    store = SnapshotStore(tmp_path)
    stray = Path(tmp_path) / "snapshot-0000000000000009.snap.tmp"
    stray.write_bytes(b"half a snapshot")
    assert store.load_latest() is None
    store.save(1, {"maps": {}})
    assert not stray.exists()  # save prunes strays left by crashes


def test_snapshot_empty_directory_loads_none(tmp_path):
    assert SnapshotStore(tmp_path).load_latest() is None


# ---------------------------------------------------------------------------
# Recovery guards
# ---------------------------------------------------------------------------


def test_fingerprint_distinguishes_programs():
    a = program_fingerprint(_program("SELECT A, sum(B) FROM R GROUP BY A"))
    b = program_fingerprint(_program("SELECT sum(A) FROM R"))
    assert a != b
    assert a == program_fingerprint(_program("SELECT A, sum(B) FROM R GROUP BY A"))


def test_recover_refuses_foreign_program(tmp_path):
    with DurableEngine(_program(), tmp_path) as engine:
        engine.insert("R", 1, 2)
    other = _program("SELECT sum(A) FROM R")
    with pytest.raises(RecoveryError, match="different program"):
        recover_engine(other, tmp_path)
    with pytest.raises(RecoveryError, match="different program"):
        DurableEngine(other, tmp_path)


def test_recover_empty_directory_yields_fresh_engine(tmp_path):
    engine, lsn = recover_engine(_program(), tmp_path)
    assert lsn == 0
    assert engine.events_processed == 0
    assert engine.results("q") == []


def test_durable_engine_rejects_bad_options(tmp_path):
    with pytest.raises(DurabilityError):
        DurableEngine(_program(), tmp_path, snapshot_every=0)
    with pytest.raises(DurabilityError):
        DurableEngine(_program(), tmp_path, fsync="perhaps")


def test_durable_engine_rejects_use_after_close(tmp_path):
    engine = DurableEngine(_program(), tmp_path)
    engine.insert("R", 1, 2)
    engine.close()
    with pytest.raises(DurabilityError):
        engine.insert("R", 1, 2)


def test_precheck_keeps_bad_events_out_of_the_log(tmp_path):
    program = compile_sql(
        "SELECT A, sum(B) FROM R GROUP BY A",
        Catalog.from_script(CATALOG_DDL),
        name="q",
    )
    with DurableEngine(program, tmp_path, strict=True, fsync="always") as engine:
        engine.insert("R", 1, 2)
        with pytest.raises(UnknownStreamError):
            engine.insert("Nope", 1, 2)
    # The rejected event was never logged, so recovery replays cleanly.
    recovered, lsn = recover_engine(program, tmp_path, strict=True)
    assert lsn == 1
    assert recovered.events_processed == 1


def test_restore_state_rejects_unknown_maps():
    engine = DeltaEngine(_program())
    with pytest.raises(EventError, match="unknown maps"):
        engine.restore_state({"not_a_map": {}})


# ---------------------------------------------------------------------------
# Unknown-relation diagnostics (strict mode)
# ---------------------------------------------------------------------------


def test_unknown_relation_error_names_relation_and_lists_known():
    engine = DeltaEngine(_program(), strict=True)
    with pytest.raises(UnknownStreamError) as excinfo:
        engine.insert("Trades", 1, 2)
    message = str(excinfo.value)
    assert "'Trades'" in message
    assert "known relations" in message and "R" in message


def test_unknown_relation_error_on_batch_and_load_paths():
    engine = DeltaEngine(_program(), strict=True)
    with pytest.raises(UnknownStreamError, match="known relations"):
        engine.process_batch("Nope", 1, [(1, 2), (3, 4)])
    with pytest.raises(UnknownStreamError, match="known relations"):
        engine.load("Nope", [(1, 2)])


def test_unknown_relation_error_on_sharded_router():
    engine = ShardedEngine(_program(), shards=2, strict=True)
    with pytest.raises(UnknownStreamError, match="known relations"):
        engine.process_batch("Nope", 1, [(1, 2)])


def test_non_strict_engine_still_skips_unknown_relations():
    engine = DeltaEngine(_program())
    engine.insert("Nope", 1, 2)
    assert engine.events_skipped == 1
    assert engine.events_processed == 0


# ---------------------------------------------------------------------------
# Resume watermark agreement (oldest_replayable_lsn / ResumeGapError)
# ---------------------------------------------------------------------------


def test_oldest_replayable_lsn_tracks_truncation(tmp_path):
    with WriteAheadLog(tmp_path, fsync="none", segment_bytes=256) as wal:
        # A frameless fresh log answers its next LSN (coverage starts
        # there; nothing has been truncated away).
        assert wal.oldest_replayable_lsn() == 1
        _append_n(wal, 30)
        assert wal.oldest_replayable_lsn() == 1
        wal.truncate_before(20)
        oldest = wal.oldest_replayable_lsn()
        # truncate_before keeps the segment holding watermark+1, so the
        # oldest replayable frame is at or below the watermark + 1.
        assert oldest is not None and oldest <= 21
        # Agreement: replay from oldest-1 works, replay from before the
        # truncated prefix raises the typed gap error.
        lsns = [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path, after_lsn=oldest - 1)]
        assert lsns == list(range(oldest, 31))


def test_replay_raises_resume_gap_for_pre_truncation_lsn(tmp_path):
    from repro.errors import ResumeGapError

    with WriteAheadLog(tmp_path, fsync="none", segment_bytes=256) as wal:
        _append_n(wal, 30)
        wal.truncate_before(20)
        oldest = wal.oldest_replayable_lsn()
    assert oldest > 2
    with pytest.raises(ResumeGapError) as info:
        list(WriteAheadLog.replay(tmp_path, after_lsn=1))
    assert info.value.requested_lsn == 1
    assert info.value.oldest_lsn == oldest


def test_replay_raises_resume_gap_on_forward_gap(tmp_path):
    from repro.errors import ResumeGapError

    with WriteAheadLog(tmp_path, fsync="none") as wal:
        wal.ensure_lsn(10)  # fresh log starting past a snapshot watermark
        _append_n(wal, 3)
    # Replay from the watermark is fine (first frame is 11)...
    assert [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path, after_lsn=10)] == [11, 12, 13]
    # ...but a reader expecting frames 1..10 must be told they are gone.
    with pytest.raises(ResumeGapError):
        list(WriteAheadLog.replay(tmp_path, after_lsn=0))


def test_snapshot_load_latest_max_lsn(tmp_path):
    store = SnapshotStore(tmp_path, keep=10)
    for lsn in (5, 10, 15):
        store.save(lsn, {"maps": {}, "marker": lsn})
    assert store.load_latest()["marker"] == 15
    assert store.load_latest(max_lsn=12)["marker"] == 10
    assert store.load_latest(max_lsn=5)["marker"] == 5
    assert store.load_latest(max_lsn=4) is None


def test_durable_engine_oldest_replayable_lsn(tmp_path):
    engine = DurableEngine(_program(), tmp_path, fsync="none", segment_bytes=256)
    for i in range(40):
        engine.process_batch("R", 1, [(i % 4, i)])
    assert engine.oldest_replayable_lsn() == 1
    engine.snapshot()  # retires fully covered segments
    oldest = engine.oldest_replayable_lsn()
    assert oldest is None or oldest > 1
    engine.close()
