"""ShardedEngine behaviour: routing, merging, fallback, lifecycle.

The deep equivalence properties live in
``tests/integration/test_sharding_property.py``; these tests pin the
engine-level contract — counters, static-table enforcement, strict mode,
the serial fallback, the worker-process backend and its error surfacing.
"""

import os

import pytest

from repro.compiler import compile_sql
from repro.errors import EventError, UnknownStreamError
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.sql.catalog import Catalog

RST_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
"""

GROUPED = "SELECT A, sum(B) FROM R GROUP BY A"


def _grouped_program():
    return compile_sql(GROUPED, Catalog.from_script(RST_DDL))


class TestBasics:
    def test_results_match_single_engine(self):
        program = _grouped_program()
        single = DeltaEngine(program)
        sharded = ShardedEngine(program, shards=3)
        for a, b in [(1, 10), (2, 20), (1, 5), (3, 7), (2, -20)]:
            single.insert("R", a, b)
            sharded.insert("R", a, b)
        assert sharded.results() == single.results()
        assert sharded.results_dict() == single.results_dict()
        assert sharded.merged_maps() == single.maps
        assert sharded.events_processed == single.events_processed

    def test_delete_events_route_like_inserts(self):
        program = _grouped_program()
        single = DeltaEngine(program)
        sharded = ShardedEngine(program, shards=4)
        for engine in (single, sharded):
            engine.insert("R", 1, 10)
            engine.delete("R", 1, 10)
        assert sharded.merged_maps() == single.maps

    def test_map_view_and_sizes_are_merged(self):
        program = _grouped_program()
        sharded = ShardedEngine(program, shards=4)
        for a in range(8):
            sharded.insert("R", a, 1)
        name = program.slot_maps["q"][0]
        assert len(sharded.map_view(name)) == 8
        assert sharded.map_sizes()[name] == 8
        assert sharded.total_entries() == sum(sharded.map_sizes().values())

    def test_scalar_equi_join_shards_on_the_join_key(self):
        # The root map is additive (write-only), so even a scalar
        # aggregate shards when every derived map keys on the join column.
        program = compile_sql(
            "SELECT sum(r.A * s.C) FROM R r, S s WHERE r.B = s.B",
            Catalog.from_script(RST_DDL),
        )
        sharded = ShardedEngine(program, shards=4)
        assert sharded.spec.partitionable
        sharded.insert("R", 2, 1)
        sharded.insert("S", 1, 100)
        assert sharded.result_scalar() == 200

    def test_result_scalar_on_serial_fallback(self):
        # A cross product reads zero-key running sums: the serial lane.
        program = compile_sql(
            "SELECT sum(r.A * s.C) FROM R r, S s",
            Catalog.from_script(RST_DDL),
        )
        sharded = ShardedEngine(program, shards=4)
        assert not sharded.spec.partitionable
        sharded.insert("R", 2, 0)
        sharded.insert("S", 0, 100)
        assert sharded.result_scalar() == 200

    def test_invalid_shard_count(self):
        with pytest.raises(EventError):
            ShardedEngine(_grouped_program(), shards=0)

    def test_interpreted_mode(self):
        program = _grouped_program()
        single = DeltaEngine(program, mode="interpreted")
        sharded = ShardedEngine(program, shards=2, mode="interpreted")
        for a, b in [(1, 1), (2, 2), (3, 3)]:
            single.insert("R", a, b)
            sharded.insert("R", a, b)
        assert sharded.merged_maps() == single.maps


class TestEventPolicy:
    def test_unknown_relation_skipped_and_counted(self):
        sharded = ShardedEngine(_grouped_program(), shards=2)
        sharded.process(StreamEvent("UNKNOWN", 1, (1,)))
        assert sharded.events_skipped == 1
        assert sharded.events_processed == 0

    def test_unknown_relation_strict_raises(self):
        sharded = ShardedEngine(_grouped_program(), shards=2, strict=True)
        with pytest.raises(UnknownStreamError):
            sharded.process(StreamEvent("UNKNOWN", 1, (1,)))

    def test_static_table_rules_enforced_globally(self):
        ddl = """
        CREATE TABLE DIM (K int, V int);
        CREATE STREAM FACT (K int, M int);
        """
        program = compile_sql(
            "SELECT sum(f.M * d.V) FROM FACT f, DIM d WHERE f.K = d.K",
            Catalog.from_script(ddl),
        )
        sharded = ShardedEngine(program, shards=2)
        sharded.load("DIM", [(1, 10), (2, 20)])
        sharded.insert("FACT", 1, 3)
        assert sharded.result_scalar() == 30
        with pytest.raises(EventError):
            sharded.load("DIM", [(3, 30)])
        with pytest.raises(EventError):
            # Static tables reject deletes even before the stream starts.
            ShardedEngine(program, shards=2).process(
                StreamEvent("DIM", -1, (1, 10))
            )

    def test_empty_batch_is_noop(self):
        sharded = ShardedEngine(_grouped_program(), shards=2)
        assert sharded.process_batch("R", 1, []) == 0

    def test_process_stream_counts_consumed_events(self):
        sharded = ShardedEngine(_grouped_program(), shards=2)
        events = [StreamEvent("R", 1, (i % 3, i)) for i in range(10)]
        events.append(StreamEvent("UNKNOWN", 1, (0,)))
        assert sharded.process_stream(events, batch_size=4) == 11
        assert sharded.events_processed == 10
        assert sharded.events_skipped == 1


class TestShardedBatchSource:
    def test_routing_matches_engine_partitioning(self):
        from repro.compiler import analyze_partitioning
        from repro.runtime.sources import sharded_batch_source

        program = _grouped_program()
        spec = analyze_partitioning(program)
        shards = 3
        events = [StreamEvent("R", 1, (i % 7, i)) for i in range(40)]
        # Drive one engine per shard straight from the source's routing...
        lanes = [DeltaEngine(program) for _ in range(shards)]
        serial = DeltaEngine(program)
        for shard, batch in sharded_batch_source(
            events, spec.relation_columns, shards, batch_size=8
        ):
            target = serial if shard is None else lanes[shard]
            target.process_batch(batch.relation, batch.sign, batch.rows)
        # ...and the merged lane maps must equal ShardedEngine's answer.
        sharded = ShardedEngine(program, shards=shards, spec=spec)
        sharded.process_stream(events, batch_size=8)
        from repro.runtime.engine import _merge_lane_maps

        merged = _merge_lane_maps(
            program, [serial.maps] + [lane.maps for lane in lanes]
        )
        assert merged == sharded.merged_maps()

    def test_serial_relations_yield_none_shard(self):
        from repro.runtime.sources import sharded_batch_source

        events = [StreamEvent("X", 1, (1,)), StreamEvent("X", 1, (2,))]
        routed = list(sharded_batch_source(events, {}, 4))
        assert [shard for shard, _ in routed] == [None]
        assert len(routed[0][1].rows) == 2


class TestLifecycle:
    def test_use_after_close_raises(self):
        from repro.errors import EventError

        program = _grouped_program()
        sharded = ShardedEngine(program, shards=2)
        sharded.insert("R", 1, 10)
        assert sharded.results()  # readable while open
        sharded.close()
        with pytest.raises(EventError, match="closed"):
            sharded.results()
        with pytest.raises(EventError, match="closed"):
            sharded.insert("R", 2, 20)
        with pytest.raises(EventError, match="closed"):
            _ = sharded.events_processed
        sharded.close()  # still idempotent


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process lanes require POSIX fork"
)
class TestProcessBackend:
    def test_parallel_results_identical(self):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
        from repro.workloads.orderbook import OrderBookGenerator

        program = compile_sql(FINANCE_QUERIES["bsp"], finance_catalog())
        events = list(OrderBookGenerator(seed=3).events(600))
        single = DeltaEngine(program)
        single.process_stream(events)
        with ShardedEngine(program, shards=2, parallel=True) as sharded:
            assert sharded.parallel
            sharded.process_stream(events, batch_size=100)
            assert sharded.merged_maps() == single.maps
            assert sharded.events_processed == single.events_processed

    def test_worker_failure_surfaces_on_sync(self):
        program = _grouped_program()
        with ShardedEngine(program, shards=2, parallel=True) as sharded:
            assert sharded.parallel
            # A malformed row (too few values) explodes inside the
            # worker's generated trigger, not at the coordinator.
            sharded.process_batch("R", 1, [(1,)])
            with pytest.raises(EventError, match=r"shard worker \d+ failed"):
                sharded.sync()

    def test_close_is_idempotent(self):
        sharded = ShardedEngine(_grouped_program(), shards=2, parallel=True)
        sharded.insert("R", 1, 1)
        sharded.close()
        sharded.close()
