"""Hypothesis strategies generating well-formed calculus expressions.

The generators build expressions over a fixed three-relation schema
(R(a,b), S(b,c), T(c,d) — the paper's running example) by construction rules
that mirror the schema discipline: products bind variables left to right,
comparison/lift bodies only read already-bound variables, and the top level
is always a closed aggregate.  This keeps every generated expression
evaluable, so the property tests exercise semantics rather than error paths.
"""

from __future__ import annotations

import hypothesis.strategies as st

from repro.algebra.expr import (
    AggSum,
    Cmp,
    Const,
    Exists,
    Expr,
    Lift,
    Rel,
    Var,
    add,
    mul,
)

RELATIONS = {"R": 2, "S": 2, "T": 2}
VALUES = st.integers(min_value=0, max_value=3)
CMP_OPS = ["=", "!=", "<", "<=", ">", ">="]


@st.composite
def databases(draw):
    """A small database for R/S/T with integer values and multiplicities.

    Multiplicities may be negative: GMRs are closed under deletion, and the
    delta rules must hold on any ring state.
    """
    db = {}
    for name, arity in RELATIONS.items():
        n_rows = draw(st.integers(min_value=0, max_value=4))
        rel = {}
        for _ in range(n_rows):
            tup = tuple(draw(VALUES) for _ in range(arity))
            mult = draw(st.sampled_from([-1, 1, 1, 2]))
            rel[tup] = rel.get(tup, 0) + mult
        db[name] = {k: v for k, v in rel.items() if v != 0}
    return db


@st.composite
def events(draw):
    """A concrete single-tuple event: (relation, sign, values)."""
    name = draw(st.sampled_from(sorted(RELATIONS)))
    sign = draw(st.sampled_from([1, -1]))
    values = tuple(draw(VALUES) for _ in range(RELATIONS[name]))
    return name, sign, values


class _NamePool:
    def __init__(self) -> None:
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"


@st.composite
def _scalar(draw, bound: list[str], pool: _NamePool, depth: int) -> Expr:
    """A scalar expression readable under the current bindings."""
    options = ["const"]
    if bound:
        options.extend(["var", "var"])
    if depth > 0:
        options.append("agg")
    kind = draw(st.sampled_from(options))
    if kind == "const":
        return Const(draw(VALUES))
    if kind == "var":
        return Var(draw(st.sampled_from(bound)))
    body = draw(_product(bound, pool, depth - 1))
    return AggSum((), body)


@st.composite
def _product(draw, outer_bound: list[str], pool: _NamePool, depth: int) -> Expr:
    """A product of atoms that is closed given ``outer_bound``.

    All variables the product binds are summed by the caller (the enclosing
    AggSum), so the caller treats its outputs as local.
    """
    bound = list(outer_bound)
    factors: list[Expr] = []
    n_atoms = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n_atoms):
        name = draw(st.sampled_from(sorted(RELATIONS)))
        args = []
        for _ in range(RELATIONS[name]):
            choice = draw(st.sampled_from(["new", "new", "bound", "const"]))
            if choice == "bound" and bound:
                args.append(Var(draw(st.sampled_from(bound))))
            elif choice == "const":
                args.append(Const(draw(VALUES)))
            else:
                fresh = pool.fresh()
                args.append(Var(fresh))
                bound.append(fresh)
        factors.append(Rel(name, tuple(args)))

    n_extras = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_extras):
        options = ["cmp", "value", "lift"]
        if depth > 0:
            options.extend(["exists", "nested_agg"])
        kind = draw(st.sampled_from(options))
        if kind == "cmp":
            left = draw(_scalar(bound, pool, 0))
            right = draw(_scalar(bound, pool, 0))
            op = draw(st.sampled_from(CMP_OPS))
            factors.append(Cmp(op, left, right))
        elif kind == "value":
            factors.append(draw(_scalar(bound, pool, 0)))
        elif kind == "lift":
            body = draw(_scalar(bound, pool, max(depth - 1, 0)))
            fresh = pool.fresh()
            factors.append(Lift(fresh, body))
            bound.append(fresh)
        elif kind == "exists":
            inner = draw(_product(bound, pool, depth - 1))
            factors.append(Exists(inner))
        else:  # nested full aggregate used as a value
            inner = draw(_product(bound, pool, depth - 1))
            factors.append(AggSum((), inner))
    return mul(*factors)


@st.composite
def closed_queries(draw, max_group: int = 2) -> Expr:
    """A closed query: an AggSum (possibly grouped) over a random product,
    or a small sum of such aggregates."""
    pool = _NamePool()
    n_terms = draw(st.integers(min_value=1, max_value=2))
    if n_terms == 2:
        t1 = AggSum((), draw(_product([], pool, 1)))
        t2 = AggSum((), draw(_product([], pool, 1)))
        return add(t1, t2)
    body = draw(_product([], pool, 1))
    from repro.algebra.schema import output_vars

    outs = output_vars(body)
    k = draw(st.integers(min_value=0, max_value=min(max_group, len(outs))))
    group = tuple(outs[:k])
    return AggSum(group, body)
