"""Compiler tests: Figure 2 reproduction, map sharing, statement shapes."""

import pytest

from repro.algebra.expr import AggSum, Lift, Rel, Var
from repro.compiler import CompileOptions, compile_sql, compile_queries
from repro.compiler.materialize import canonicalize, is_data_bound, ordered_vars
from repro.algebra.translate import translate_sql
from repro.sql.catalog import Catalog


@pytest.fixture
def catalog():
    return Catalog.from_script(
        """
        CREATE STREAM R (A int, B int);
        CREATE STREAM S (B int, C int);
        CREATE STREAM T (C int, D int);
        CREATE STREAM bids (broker_id int, price int, volume int);
        CREATE STREAM asks (broker_id int, price int, volume int);
        """
    )


PAPER_SQL = (
    "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C"
)


class TestFigure2:
    """The compiled program must match the paper's Figure 2 exactly."""

    @pytest.fixture
    def program(self, catalog):
        return compile_sql(PAPER_SQL, catalog)

    def test_map_inventory(self, program):
        """Six maps: q, qD[b], qA[b], qD[c], qA[c], q1[b,c] (S occurrences)."""
        defs = {repr(m.defn) for m in program.maps.values()}
        assert len(program.maps) == 6
        assert "AggSum([], R(__i0,__i1) * S(__i1,__i2) * T(__i2,__i3) * __i0 * __i3)" in defs
        # qD[b] = sum_D(sigma_B=b(S) join T)
        assert "AggSum([__k0], S(__k0,__i0) * T(__i0,__i1) * __i1)" in defs
        # qA[b] = sum_A(sigma_B=b(R))
        assert "AggSum([__k0], R(__i0,__k0) * __i0)" in defs
        # qD[c] = sum_D(sigma_C=c(T))
        assert "AggSum([__k0], T(__k0,__i0) * __i0)" in defs
        # qA[c] = sum_A(R join sigma_C=c(S))
        assert "AggSum([__k0], R(__i0,__i1) * S(__i1,__k0) * __i0)" in defs
        # q1[b,c] = count of S tuples
        assert "AggSum([__k0,__k1], S(__k0,__k1))" in defs

    def test_insert_s_eliminates_the_join(self, program):
        """The paper's key step: insert-into-S touches no join at all."""
        trigger = program.trigger_for("S", 1)
        root = program.slot_maps["q"][0]
        stmt = next(s for s in trigger.statements if s.target == root)
        refs = [n for n in [stmt.rhs] if True]
        names = stmt.reads()
        assert len(names) == 2  # qA[b] * qD[c]
        assert stmt.loop_vars == ()

    def test_insert_r_shapes(self, program):
        trigger = program.trigger_for("R", 1)
        targets = {s.target: s for s in trigger.statements}
        root = program.slot_maps["q"][0]
        # q += a * qD[b]: single keyed lookup, no loop.
        assert targets[root].loop_vars == ()
        # exactly one foreach statement (qA[c] maintenance over S-occurrences)
        loops = [s for s in trigger.statements if s.loop_vars]
        assert len(loops) == 1

    def test_deletion_triggers_are_negations(self, program):
        for rel in ("R", "S", "T"):
            plus = program.trigger_for(rel, 1)
            minus = program.trigger_for(rel, -1)
            assert len(plus.statements) == len(minus.statements)
            plus_targets = sorted(s.target for s in plus.statements)
            minus_targets = sorted(s.target for s in minus.statements)
            assert plus_targets == minus_targets
            for s in minus.statements:
                assert "-1" in repr(s.rhs)

    def test_trigger_count(self, program):
        assert len(program.triggers) == 6  # 3 relations x insert/delete


class TestMapSharing:
    def test_shared_maps_across_queries(self, catalog):
        q1 = translate_sql("SELECT sum(volume) FROM bids", catalog, name="v1")
        q2 = translate_sql(
            "SELECT sum(b.volume * a.volume) FROM bids b, asks a "
            "WHERE b.broker_id = a.broker_id",
            catalog,
            name="v2",
        )
        program = compile_queries([q1, q2], catalog)
        # v1's root (sum of bid volume per nothing) is NOT shared (different
        # shape), but the broker-keyed bid-volume map appears only once.
        names = [m.defn for m in program.maps.values()]
        assert len(names) == len(set(names))  # no duplicate definitions at all

    def test_identical_queries_share_everything(self, catalog):
        q1 = translate_sql("SELECT sum(volume) FROM bids", catalog, name="a")
        q2 = translate_sql("SELECT sum(volume) FROM bids", catalog, name="b")
        program = compile_queries([q1, q2], catalog)
        assert program.slot_maps["a"] == program.slot_maps["b"]
        assert len(program.maps) == 1

    def test_sharing_can_be_disabled(self, catalog):
        q1 = translate_sql("SELECT sum(volume) FROM bids", catalog, name="a")
        q2 = translate_sql("SELECT sum(volume) FROM bids", catalog, name="b")
        program = compile_queries(
            [q1, q2], catalog, CompileOptions(share_maps=False)
        )
        assert len(program.maps) == 2


class TestCompileOptions:
    def test_no_deletions_halves_triggers(self, catalog):
        program = compile_sql(
            PAPER_SQL, catalog, options=CompileOptions(deletions=False)
        )
        assert all(sign == 1 for _, sign in program.triggers)

    def test_first_order_mode_has_no_derived_aggregates(self, catalog):
        """derived_maps=False is classical first-order IVM: only occurrence
        maps of the base relations are maintained."""
        program = compile_sql(
            PAPER_SQL, catalog, options=CompileOptions(derived_maps=False)
        )
        roles = {m.role for m in program.maps.values()}
        assert roles <= {"root", "occurrence"}
        # The root update must now join the base occurrence maps.
        trigger = program.trigger_for("S", 1)
        root = program.slot_maps["q"][0]
        stmt = next(s for s in trigger.statements if s.target == root)
        assert len(stmt.reads()) == 2  # R-occurrences join T-occurrences

    def test_full_mode_is_default(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        assert program.options.derived_maps


class TestGroupedQueries:
    def test_group_key_becomes_map_key(self, catalog):
        program = compile_sql(
            "SELECT broker_id, sum(price * volume) FROM bids GROUP BY broker_id",
            catalog,
        )
        root = program.slot_maps["q"][0]
        assert program.maps[root].arity == 1
        trigger = program.trigger_for("bids", 1)
        stmt = next(s for s in trigger.statements if s.target == root)
        # Key arg is the event's broker value; no loops.
        assert stmt.loop_vars == ()

    def test_self_join_compiles(self, catalog):
        program = compile_sql(
            "SELECT sum(b1.volume * b2.volume) FROM bids b1, bids b2 "
            "WHERE b1.broker_id = b2.broker_id",
            catalog,
        )
        trigger = program.trigger_for("bids", 1)
        # Self-joins need the second-order cross term: the event joins itself.
        assert len(trigger.statements) >= 2


class TestMaterializeHelpers:
    def test_ordered_vars_deterministic(self):
        e = AggSum(("b",), Rel("S", (Var("b"), Var("c"))))
        assert ordered_vars(e) == ["b", "c"]

    def test_canonicalize_positional(self):
        e = Rel("S", (Var("x"), Var("y")))
        canon, keys = canonicalize(("x",), e)
        assert keys == ("__k0",)
        assert repr(canon) == "AggSum([__k0], S(__k0,__i0))"

    def test_canonicalize_shares_alpha_equivalent(self):
        e1 = Rel("S", (Var("x"), Var("y")))
        e2 = Rel("S", (Var("p"), Var("q")))
        assert canonicalize(("x",), e1) == canonicalize(("p",), e2)

    def test_is_data_bound(self):
        body = Rel("S", (Var("b"), Var("c")))
        assert is_data_bound("b", body)
        assert not is_data_bound("z", body)
        lifted = Lift("v", Var("c"))
        assert is_data_bound("v", lifted)
