"""Unit tests for the shard-partitioning analysis.

The analysis must find the per-group independence the finance group-by
queries expose (every map access keyed on ``broker_id``), reject programs
whose triggers read scalar or differently-keyed state (psp, vwap, the SSB
star join), and keep the serial and sharded lanes map-disjoint when a
program mixes both kinds of query.
"""

import pytest

from repro.algebra.translate import translate_sql
from repro.compiler import analyze_partitioning, compile_queries, compile_sql
from repro.sql.catalog import Catalog

RST_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""


def _compile(sql: str, ddl: str = RST_DDL, name: str = "q"):
    return compile_sql(sql, Catalog.from_script(ddl), name=name)


class TestGroupedQueries:
    def test_grouped_single_relation(self):
        spec = analyze_partitioning(
            _compile("SELECT A, sum(B) FROM R GROUP BY A")
        )
        assert spec.relation_columns == {"R": 0}
        assert spec.partitionable
        assert not spec.serial_relations

    def test_bsp_partitions_both_books_by_broker(self):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        program = compile_sql(FINANCE_QUERIES["bsp"], finance_catalog())
        spec = analyze_partitioning(program)
        # broker_id is column 2 of both bids and asks.
        assert spec.relation_columns == {"asks": 2, "bids": 2}
        # Every derived map is keyed by broker at position 0 and read by
        # the opposite book's triggers, so all are shard-owned.
        assert set(spec.map_positions.values()) == {0}
        assert not spec.serial_maps

    def test_axf_occurrence_maps_sharded_on_broker_position(self):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        program = compile_sql(FINANCE_QUERIES["axf"], finance_catalog())
        spec = analyze_partitioning(program)
        assert spec.relation_columns == {"asks": 2, "bids": 2}
        # The base occurrence maps carry broker_id at key position 2.
        assert set(spec.map_positions.values()) == {2}

    def test_join_key_co_partitioning(self):
        # R and S co-partition on the join column B (different positions).
        spec = analyze_partitioning(
            _compile(
                "SELECT r.B, sum(r.A * s.C) FROM R r, S s "
                "WHERE r.B = s.B GROUP BY r.B"
            )
        )
        assert spec.relation_columns == {"R": 1, "S": 0}


class TestSerialFallback:
    @pytest.mark.parametrize("query_name", ["psp", "vwap", "mst"])
    def test_scalar_and_inequality_queries_are_serial(self, query_name):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        program = compile_sql(FINANCE_QUERIES[query_name], finance_catalog())
        spec = analyze_partitioning(program)
        assert not spec.partitionable
        assert not spec.relation_columns

    def test_float_cross_shard_sum_is_serial(self):
        # A scalar SUM over floats would merge by re-associated float
        # addition across shards; the exactness guard keeps it serial.
        ddl = "CREATE STREAM R (A int, B float);"
        spec = analyze_partitioning(_compile("SELECT sum(B) FROM R", ddl))
        assert not spec.partitionable
        # The integer twin is free to shard (addition is exact).
        spec_int = analyze_partitioning(
            _compile("SELECT sum(B) FROM R", "CREATE STREAM R (A int, B int);")
        )
        assert spec_int.partitionable

    def test_float_grouped_query_still_shards(self):
        # Grouped writes key on the partition column: shard key sets stay
        # disjoint, no re-association, so floats are fine here.
        ddl = "CREATE STREAM R (A int, B float);"
        spec = analyze_partitioning(
            _compile("SELECT A, sum(B) FROM R GROUP BY A", ddl)
        )
        assert spec.relation_columns == {"R": 0}

    def test_ssb_star_join_is_serial(self):
        from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog

        program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
        spec = analyze_partitioning(program)
        # The fact trigger joins four dimensions on four different
        # columns; no single routing column satisfies all reads.
        assert not spec.partitionable

    def test_scalar_aggregate_is_serial(self):
        spec = analyze_partitioning(_compile("SELECT sum(A) FROM R"))
        # The root map is written, never read: additive, but with no key
        # to route on the single relation R has no feasible column --
        # unless its trigger touches no read map at all, in which case
        # any column works.  sum(A) compiles to straight additive writes,
        # so R is partitionable by every column; accept either outcome
        # but require correctness-critical invariants.
        assert spec.serial_maps == frozenset()
        for name in spec.additive_maps:
            assert name.startswith("q_")


class TestLaneDisjointness:
    def test_mixed_program_demotes_shared_maps(self):
        catalog = Catalog.from_script(RST_DDL)
        # Alone, the grouped join shards R and S on the join key B.
        grouped = translate_sql(
            "SELECT r.B, sum(r.A * s.C) FROM R r, S s WHERE r.B = s.B "
            "GROUP BY r.B",
            catalog,
            name="grouped",
        )
        # The S*T cross product reads zero-key running sums, forcing S
        # serial -- and S's trigger maintains the join maps the grouped
        # query reads, so the demotion fixpoint must pull R serial too.
        scalar = translate_sql(
            "SELECT sum(s.C * t.D) FROM S s, T t", catalog, name="scalar"
        )
        program = compile_queries([grouped, scalar], catalog)
        spec = analyze_partitioning(program)
        assert not spec.partitionable
        assert {"R", "S", "T"} <= set(spec.serial_relations)
        # No map may be owned by both lanes.
        assert not set(spec.map_positions) & spec.serial_maps

    def test_spec_describe_mentions_lanes(self):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        spec = analyze_partitioning(
            compile_sql(FINANCE_QUERIES["bsp"], finance_catalog())
        )
        text = spec.describe()
        assert "hash-route" in text
        assert "bids" in text and "asks" in text

    def test_column_for(self):
        spec = analyze_partitioning(
            _compile("SELECT A, sum(B) FROM R GROUP BY A")
        )
        assert spec.column_for("R") == 0
        assert spec.column_for("unknown") is None


class TestGeneratedModuleMetadata:
    def test_partitioning_stamped_into_header(self):
        from repro.codegen.pygen import generate_module
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        program = compile_sql(FINANCE_QUERIES["bsp"], finance_catalog())
        source = generate_module(program)
        assert "== partitioning ==" in source
        assert "hash-route by column 2" in source
        compile(source, "<test>", "exec")  # header must stay valid Python
