"""Tests for program structures: ordering, buffering, validation."""

import pytest

from repro.errors import CompilationError
from repro.algebra.expr import Const, MapRef, Var, mul
from repro.compiler.program import (
    Statement,
    needs_buffering,
    order_statements,
    validate_statement,
)


def stmt(target, reads=(), loop_vars=(), args=()):
    rhs_parts = [MapRef(name, ()) for name in reads] or [Const(1)]
    return Statement(
        target=target,
        args=tuple(Var(a) for a in args),
        rhs=mul(*rhs_parts),
        loop_vars=loop_vars,
    )


class TestOrdering:
    def test_reader_runs_before_writer(self):
        writer = stmt("x")
        reader = stmt("y", reads=("x",))
        ordered = order_statements([writer, reader])
        assert ordered.index(reader) < ordered.index(writer)

    def test_chain_ordering(self):
        s1 = stmt("a", reads=("b",))
        s2 = stmt("b", reads=("c",))
        s3 = stmt("c")
        ordered = order_statements([s3, s2, s1])
        assert [s.target for s in ordered] == ["a", "b", "c"]

    def test_cycle_preserves_input_order(self):
        s1 = stmt("a", reads=("b",))
        s2 = stmt("b", reads=("a",))
        ordered = order_statements([s1, s2])
        assert ordered == [s1, s2]

    def test_independent_statements_keep_stable_order(self):
        s1 = stmt("a")
        s2 = stmt("b")
        assert order_statements([s1, s2]) == [s1, s2]

    def test_empty_and_singleton(self):
        assert order_statements([]) == []
        s = stmt("a")
        assert order_statements([s]) == [s]


class TestBuffering:
    def test_clean_sequence_needs_no_buffering(self):
        s1 = stmt("y", reads=("x",))
        s2 = stmt("x")
        assert not needs_buffering([s1, s2])

    def test_read_after_write_needs_buffering(self):
        s1 = stmt("x")
        s2 = stmt("y", reads=("x",))
        assert needs_buffering([s1, s2])

    def test_self_reference_needs_buffering(self):
        s = stmt("x", reads=("x",))
        assert needs_buffering([s])


class TestValidation:
    def test_loop_vars_must_be_rhs_outputs(self):
        bad = Statement(
            target="m",
            args=(Var("k"),),
            rhs=Const(1),
            loop_vars=("k",),
        )
        with pytest.raises(CompilationError):
            validate_statement(bad)

    def test_valid_loop_statement_passes(self):
        good = Statement(
            target="m",
            args=(Var("k"),),
            rhs=MapRef("src", (Var("k"),)),
            loop_vars=("k",),
        )
        validate_statement(good)
