"""TPC-H generator integrity and the SSB warehouse-loading scenario."""

import pytest

from repro.compiler import compile_sql
from repro.interpreter.executor import execute_query
from repro.interpreter.relations import Database
from repro.runtime import DeltaEngine
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.workloads.tpch import TpchGenerator, tpch_catalog
from repro.workloads.ssb import (
    SSB_Q41_COMBINED,
    SSB_Q41_OVER_LINEORDER,
    lineorder_catalog,
    lineorder_rows,
    load_static_tables,
    ssb_catalog,
    star_schema_rows,
    warehouse_stream,
)


@pytest.fixture(scope="module")
def generator():
    return TpchGenerator(sf=0.001, seed=99)


class TestGeneratorIntegrity:
    def test_deterministic_and_call_order_independent(self):
        g1 = TpchGenerator(sf=0.001, seed=5)
        _ = g1.customer()  # consume in a different order
        g2 = TpchGenerator(sf=0.001, seed=5)
        _ = g2.part()
        assert g1.part() == g2.part()
        assert g1.customer() == g2.customer()
        assert list(g1.orders_and_lineitems()) == list(g2.orders_and_lineitems())

    def test_schema_conformance(self, generator):
        catalog = tpch_catalog()
        for name, rows in generator.static_tables().items():
            relation = catalog.get(name)
            for row in rows:
                assert len(row) == relation.arity, name

    def test_referential_integrity(self, generator):
        nations = {k for k, *_ in generator.nation()}
        regions = {k for k, _ in generator.region()}
        assert {r for _, _, r in generator.nation()} <= regions
        assert {n for _, n, *_ in generator.customer()} <= nations
        assert {n for _, n, _ in generator.supplier()} <= nations

        customers = {k for k, *_ in generator.customer()}
        parts = {k for k, *_ in generator.part()}
        suppliers = {k for k, *_ in generator.supplier()}
        partsupp_pairs = {(p, s) for p, s, _ in generator.partsupp()}
        dates = {k for k, *_ in generator.ddate()}

        order_keys = set()
        for relation, row in generator.orders_and_lineitems():
            if relation == "orders":
                order_keys.add(row[0])
                assert row[1] in customers
                assert row[2] in dates
            else:
                assert row[0] in order_keys  # order arrives before its lines
                assert row[1] in parts
                assert row[2] in suppliers
                assert (row[1], row[2]) in partsupp_pairs

    def test_partsupp_pairs_unique(self, generator):
        rows = generator.partsupp()
        pairs = [(p, s) for p, s, _ in rows]
        assert len(pairs) == len(set(pairs))

    def test_scale_factor_scales_row_counts(self):
        small = TpchGenerator(sf=0.001)
        large = TpchGenerator(sf=0.004)
        assert large.n_orders > 2 * small.n_orders
        assert large.n_customers > 2 * small.n_customers


class TestWarehouseScenario:
    @pytest.mark.slow
    def test_joint_compilation_matches_two_phase_load(self, generator):
        """The paper's warehouse experiment, as a correctness statement:
        maintaining Q4.1 jointly over the OLTP stream equals materialising
        lineorder and aggregating it."""
        program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
        engine = DeltaEngine(program, mode="compiled")
        load_static_tables(engine, generator)
        engine.process_stream(warehouse_stream(generator))
        combined = sorted(engine.results("ssb41"), key=repr)

        db = Database(lineorder_catalog())
        for name, rows in star_schema_rows(generator).items():
            db.load(name, rows)
        db.load("lineorder", lineorder_rows(generator))
        bound = bind_query(
            parse_query(SSB_Q41_OVER_LINEORDER), lineorder_catalog()
        )
        two_phase = sorted(execute_query(bound, db), key=repr)
        assert combined == two_phase
        assert combined  # non-trivial result

    def test_static_tables_reject_post_stream_updates(self, generator):
        from repro.errors import EventError

        program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
        engine = DeltaEngine(program, mode="compiled")
        load_static_tables(engine, generator)
        first = next(iter(warehouse_stream(generator)))
        engine.process(first)
        with pytest.raises(EventError):
            engine.insert("nation", 99, "ATLANTIS", 0)

    def test_compiled_program_is_compact(self):
        """Static-table handling keeps the 11-way join's map inventory
        small (dozens, not thousands)."""
        program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
        assert len(program.maps) < 40
        assert {"orders", "lineitem"} <= {r for r, _ in program.triggers}

    def test_no_lineorder_materialisation(self):
        """Joint compilation never stores per-lineitem state: every map is
        an aggregate keyed by dimension attributes, so total entries stay
        far below the lineorder row count."""
        generator = TpchGenerator(sf=0.001, seed=3)
        program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
        engine = DeltaEngine(program, mode="compiled")
        load_static_tables(engine, generator)
        engine.process_stream(warehouse_stream(generator))
        lineorder_count = sum(1 for _ in lineorder_rows(generator))
        # Fact-keyed occurrence maps exist for orders (joins need them),
        # but nothing proportional to lineitem x dimensions.
        assert engine.total_entries() < 4 * lineorder_count
