"""Order book generator tests."""

import pytest

from repro.runtime.events import StreamEvent
from repro.workloads.orderbook import OrderBookGenerator, order_book_catalog


class TestGenerator:
    def test_deterministic(self):
        a = list(OrderBookGenerator(seed=7).events(500))
        b = list(OrderBookGenerator(seed=7).events(500))
        assert a == b

    def test_seed_changes_stream(self):
        a = list(OrderBookGenerator(seed=7).events(200))
        b = list(OrderBookGenerator(seed=8).events(200))
        assert a != b

    def test_exact_event_count(self):
        assert len(list(OrderBookGenerator().events(777))) == 777

    def test_events_match_schema(self):
        catalog = order_book_catalog()
        for event in OrderBookGenerator().events(300):
            assert isinstance(event, StreamEvent)
            relation = catalog.get(event.relation)
            assert len(event.values) == relation.arity
            t, order_id, broker, price, volume = event.values
            assert volume >= 1
            assert price > 0

    def test_deletions_always_valid(self):
        """Every delete refers to a currently standing order (a stream the
        delta engines can consume without bag underflow)."""
        live = {"bids": {}, "asks": {}}
        for event in OrderBookGenerator(seed=3).events(3000):
            book = live[event.relation]
            if event.sign == 1:
                book[event.values] = book.get(event.values, 0) + 1
            else:
                assert book.get(event.values, 0) > 0, event
                book[event.values] -= 1
                if book[event.values] == 0:
                    del book[event.values]

    def test_cancel_heavy_mix_keeps_book_bounded(self):
        generator = OrderBookGenerator(seed=5)
        for _ in generator.events(5000):
            pass
        depth = generator.depth()
        # With ~45% inserts vs ~55% removals+reinsertions the book stays
        # far smaller than the number of processed events.
        assert depth["bids"] + depth["asks"] < 2500

    def test_modify_emits_delete_then_insert_with_same_id(self):
        generator = OrderBookGenerator(seed=11, new_order_weight=0.3,
                                       cancel_weight=0.0, modify_weight=0.7)
        events = list(generator.events(100))
        pairs = [
            (events[i], events[i + 1])
            for i in range(len(events) - 1)
            if events[i].sign == -1 and events[i + 1].sign == 1
        ]
        assert pairs, "expected modification pairs"
        for removal, reinsert in pairs:
            if removal.relation == reinsert.relation:
                assert removal.values[1] == reinsert.values[1]  # same order id


class TestFinanceQueriesOnBook:
    @pytest.mark.parametrize("name", ["axf", "bsp", "psp"])
    def test_compiled_engine_matches_reeval_on_book_stream(self, name):
        from repro.baselines import make_engine
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        catalog = finance_catalog()
        sql = FINANCE_QUERIES[name]
        compiled = make_engine("dbtoaster", {"q": sql}, catalog)
        reference = make_engine("reeval_lazy", {"q": sql}, catalog)
        for event in OrderBookGenerator(seed=13).events(600):
            compiled.process(event)
            reference.process(event)
        got = sorted(compiled.results("q"), key=repr)
        expected = sorted(reference.results("q"), key=repr)
        assert got == expected

    @pytest.mark.parametrize("name", ["vwap", "mst"])
    def test_nested_queries_match_reeval(self, name):
        from repro.baselines import make_engine
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        catalog = finance_catalog()
        sql = FINANCE_QUERIES[name]
        compiled = make_engine("dbtoaster", {"q": sql}, catalog)
        reference = make_engine("reeval_lazy", {"q": sql}, catalog)
        for event in OrderBookGenerator(seed=17).events(250):
            compiled.process(event)
            reference.process(event)
        assert compiled.results("q") == reference.results("q")
