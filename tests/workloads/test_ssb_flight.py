"""The full SSB flight (Q1.1/Q2.1/Q3.1/Q4.1) composed over TPC-H."""

import pytest

from repro.algebra.translate import translate_sql
from repro.baselines import make_engine
from repro.compiler import compile_queries
from repro.runtime import DeltaEngine, StreamEvent
from repro.workloads.ssb import SSB_FLIGHT, ssb_catalog
from repro.workloads.tpch import TpchGenerator


@pytest.fixture(scope="module")
def flight_results():
    """Drive the whole flight plus the reeval reference on one stream."""
    catalog = ssb_catalog()
    queries = [
        translate_sql(sql, catalog, name=name) for name, sql in SSB_FLIGHT.items()
    ]
    engine = DeltaEngine(compile_queries(queries, catalog))
    reference = make_engine("reeval_lazy", dict(SSB_FLIGHT), catalog)
    generator = TpchGenerator(sf=0.0008, seed=77)
    for relation, rows in generator.static_tables().items():
        for row in rows:
            engine.insert(relation, *row)
            reference.insert(relation, *row)
    for relation, row in generator.orders_and_lineitems():
        event = StreamEvent(relation, 1, row)
        engine.process(event)
        reference.process(event)
    return engine, reference


@pytest.mark.parametrize("name", sorted(SSB_FLIGHT))
def test_flight_query_matches_reference(name, flight_results):
    engine, reference = flight_results
    got = sorted(engine.results(name), key=repr)
    expected = sorted(reference.results(name), key=repr)
    assert got == expected


def test_q31_disambiguates_same_named_group_columns(flight_results):
    """Q3.1 groups by two *different* n_name columns (customer nation and
    supplier nation); rows must carry both, not one duplicated."""
    engine, _ = flight_results
    rows = engine.results("q31")
    assert rows, "expected ASIA-to-ASIA revenue at this scale"
    assert any(row[0] != row[1] for row in rows)
    # group keys are unique
    keys = [(r[0], r[1], r[2]) for r in rows]
    assert len(keys) == len(set(keys))


def test_flight_compiles_to_shared_maps():
    """The four queries share base-relation and dimension maps."""
    catalog = ssb_catalog()
    queries = [
        translate_sql(sql, catalog, name=name) for name, sql in SSB_FLIGHT.items()
    ]
    program = compile_queries(queries, catalog)
    # Four queries, but far fewer than 4x the single-query map count.
    assert len(program.maps) < 60
