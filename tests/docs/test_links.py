"""Documentation integrity: every internal link must resolve.

Scans ``README.md`` and everything under ``docs/`` for markdown links
and images; relative targets must point at files that exist in the
repository, and ``#anchor`` fragments must match a heading in the
target document (GitHub slug rules).  External ``http(s)``/``mailto``
links are out of scope — CI cannot vouch for the internet — but a
link into the repo that rots fails the suite (and the CI docs job).
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: Documents whose links are checked (the public-facing docs layer).
DOCUMENTS = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")]
    + [REPO / "ROADMAP.md", REPO / "CHANGES.md"]
)

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _github_slug(heading: str) -> str:
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _links(markdown: str):
    return _LINK.findall(_CODE_FENCE.sub("", markdown))


def _anchors(path: Path) -> set[str]:
    return {
        _github_slug(match) for match in _HEADING.findall(path.read_text())
    }


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[str(d.relative_to(REPO)) for d in DOCUMENTS]
)
def test_internal_links_resolve(document):
    failures = []
    for target in _links(document.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            document.parent / path_part if path_part else document
        ).resolve()
        if not resolved.exists():
            failures.append(f"{target}: {resolved} does not exist")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                failures.append(f"{target}: no heading for #{fragment}")
    assert not failures, (
        f"{document.relative_to(REPO)} has broken links:\n  "
        + "\n  ".join(failures)
    )


def test_docs_layer_exists():
    """The documents the README promises are actually present."""
    assert (REPO / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO / "docs" / "STORAGE.md").exists()
    readme = (REPO / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/STORAGE.md" in readme
