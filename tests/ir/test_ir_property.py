"""The IR refactor's acceptance property: every IR-backed executor is
map-identical to the pre-refactor engine.

``LegacyExecutor`` below is the pre-refactor interpreted executor,
verbatim: it walks raw ``Statement``/``Expr`` trees with the calculus
evaluator (the semantics the pre-refactor compiled back end was tested
bit-identical against).  For random streams over the example query
shapes — and deterministically over the bundled finance workload — the
IR-backed compiled executor, the IR-walking interpreted executor, the
batched path, and sharded engines (1-4 shards, both modes) must all
produce identical maps.
"""

from functools import lru_cache

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.eval import eval_expr, eval_scalar
from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries
from repro.compiler.program import needs_buffering
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.sql.catalog import Catalog
from tests.strategies import events

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

#: Example query shapes covering straight-line triggers, foreach loops,
#: grouped targets, correlated EXISTS (buffered two-phase), and nested
#: aggregation (the loop-heavy shape the optimiser rewrites hardest).
QUERIES = {
    "chain_join": (
        "SELECT sum(r.A * t.D) FROM R r, S s, T t "
        "WHERE r.B = s.B AND s.C = t.C"
    ),
    "grouped": "SELECT A, sum(B) FROM R GROUP BY A",
    "exists_correlated": (
        "SELECT sum(r.A) FROM R r WHERE EXISTS "
        "(SELECT s.C FROM S s WHERE s.B = r.B)"
    ),
    "nested_threshold": (
        "SELECT sum(r.A) FROM R r "
        "WHERE r.B > 0.5 * (SELECT sum(r1.B) FROM R r1)"
    ),
}


class LegacyExecutor:
    """The pre-refactor interpreted executor (eval over raw Expr trees)."""

    def __init__(self, program) -> None:
        self.program = program
        self.maps = {name: {} for name in program.maps}
        self._buffered = {
            key: needs_buffering(trigger.statements)
            for key, trigger in program.triggers.items()
        }

    def process(self, event: StreamEvent) -> None:
        trigger = self.program.triggers.get((event.relation, event.sign))
        if trigger is None:
            return
        env = dict(zip(trigger.params, event.values))
        buffered = self._buffered[(trigger.relation, trigger.sign)]
        pending = []
        for statement in trigger.statements:
            updates = self._statement_updates(statement, env)
            if buffered:
                pending.extend(updates)
            else:
                self._apply(updates)
        if buffered:
            self._apply(pending)

    def _statement_updates(self, statement, env):
        cols, rows = eval_expr(statement.rhs, env, self.maps)
        updates = []
        for key_values, value in rows.items():
            row_env = {**env, **dict(zip(cols, key_values))}
            key = tuple(
                eval_scalar(arg, row_env, self.maps) for arg in statement.args
            )
            updates.append((statement.target, key, value))
        return updates

    def _apply(self, updates) -> None:
        for target, key, value in updates:
            contents = self.maps[target]
            updated = contents.get(key, 0) + value
            if updated == 0:
                contents.pop(key, None)
            else:
                contents[key] = updated


@lru_cache(maxsize=None)
def _program(query_name: str):
    catalog = Catalog.from_script(CATALOG_DDL)
    translated = translate_sql(QUERIES[query_name], catalog, name="q")
    return compile_queries([translated], catalog)


def _reference_maps(program, stream_events):
    legacy = LegacyExecutor(program)
    for event in stream_events:
        legacy.process(event)
    return legacy.maps


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@settings(max_examples=20, deadline=None)
@given(stream=st.lists(events(), max_size=40))
def test_ir_backends_match_legacy_per_event(query_name, mode, stream):
    program = _program(query_name)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    reference = _reference_maps(program, stream_events)

    engine = DeltaEngine(program, mode=mode)
    for event in stream_events:
        engine.process(event)
    assert engine.maps == reference

    unoptimised = DeltaEngine(program, mode=mode, optimize=False)
    for event in stream_events:
        unoptimised.process(event)
    assert unoptimised.maps == reference


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@settings(max_examples=15, deadline=None)
@given(
    stream=st.lists(events(), max_size=40),
    batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
def test_ir_batch_path_matches_legacy(query_name, mode, stream, batch_size):
    program = _program(query_name)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    reference = _reference_maps(program, stream_events)
    engine = DeltaEngine(program, mode=mode)
    engine.process_stream(stream_events, batch_size=batch_size)
    assert engine.maps == reference


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@pytest.mark.parametrize("shards", [1, 2, 3, 4])
@settings(max_examples=5, deadline=None)
@given(stream=st.lists(events(), max_size=30))
def test_ir_sharded_path_matches_legacy(query_name, mode, shards, stream):
    program = _program(query_name)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    reference = _reference_maps(program, stream_events)
    with ShardedEngine(program, shards=shards, mode=mode) as engine:
        engine.process_stream(stream_events)
        assert engine.merged_maps() == reference


@pytest.mark.parametrize("query_name", ["vwap", "axf", "bsp", "psp", "mst"])
def test_finance_workload_matches_legacy(query_name):
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()
    translated = translate_sql(
        FINANCE_QUERIES[query_name], catalog, name=query_name
    )
    program = compile_queries([translated], catalog)
    stream_events = list(OrderBookGenerator(seed=2009).events(400))
    reference = _reference_maps(program, stream_events)
    for mode in ("compiled", "interpreted"):
        per_event = DeltaEngine(program, mode=mode)
        for event in stream_events:
            per_event.process(event)
        assert per_event.maps == reference, f"{mode} per-event diverged"
        batched = DeltaEngine(program, mode=mode)
        batched.process_stream(stream_events, batch_size=64)
        assert batched.maps == reference, f"{mode} batched diverged"
