"""Unit tests for the imperative trigger IR: lowering, passes, printing."""

import pytest

from repro.compiler import compile_sql
from repro.ir import (
    DEFAULT_PASSES,
    dead_map_names,
    exact_value_maps,
    lower_program,
    program_str,
    trigger_str,
)
from repro.ir.nodes import (
    Assign,
    Block,
    Compare,
    Const,
    ForEachMap,
    ForEachRow,
    IfCond,
    Lookup,
    Name,
    walk_stmts,
)
from repro.sql.catalog import Catalog

DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
CREATE STREAM bids (t INT, id INT, broker_id INT, price INT, volume INT);
CREATE STREAM fbids (t INT, id INT, broker_id INT, price FLOAT, volume INT);
"""
PAPER_SQL = "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C"
VWAP_SQL = (
    "SELECT sum(b.price * b.volume) FROM bids b "
    "WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)"
)


@pytest.fixture(scope="module")
def catalog():
    return Catalog.from_script(DDL)


def _loops(trigger_ir):
    return [s for s in walk_stmts(trigger_ir.body) if isinstance(s, ForEachMap)]


class TestLowering:
    def test_every_trigger_lowered_with_batch_variant(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        ir = lower_program(program, optimize=False)
        assert set(ir.triggers) == set(program.triggers)
        assert set(ir.batch_triggers) == set(program.triggers)
        for key, trigger in program.triggers.items():
            assert ir.triggers[key].name == trigger.name
            assert ir.batch_triggers[key].name == f"{trigger.name}_batch"

    def test_unoptimised_blocks_map_one_to_one_to_statements(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        ir = lower_program(program, optimize=False)
        for key, trigger in program.triggers.items():
            blocks = [s for s in ir.triggers[key].body if isinstance(s, Block)]
            assert [b.sources[0] for b in blocks] == trigger.statements

    def test_straight_line_trigger_has_no_loops(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        ir = lower_program(program)
        assert not _loops(ir.triggers[("S", 1)])

    def test_foreach_statement_lowers_to_loop(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        ir = lower_program(program)
        assert _loops(ir.triggers[("T", 1)])

    def test_batch_variant_wraps_rows_loop(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        ir = lower_program(program)
        for trigger_ir in ir.batch_triggers.values():
            rows_loops = [
                s
                for s in walk_stmts(trigger_ir.body)
                if isinstance(s, ForEachRow)
            ]
            assert len(rows_loops) == 1
            assert rows_loops[0].rows_var == "__cols"

    def test_ir_is_cached_per_configuration(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        assert lower_program(program) is lower_program(program)
        assert lower_program(program) is not lower_program(program, optimize=False)


class TestOptimisationPasses:
    def test_vwap_loops_fuse_into_one(self, catalog):
        program = compile_sql(VWAP_SQL, catalog)
        plain = lower_program(program, optimize=False)
        optimised = lower_program(program)
        assert len(_loops(plain.triggers[("bids", 1)])) == 2
        assert len(_loops(optimised.triggers[("bids", 1)])) == 1

    def test_vwap_threshold_hoisted_out_of_loop(self, catalog):
        program = compile_sql(VWAP_SQL, catalog)
        ir = lower_program(program)
        (loop,) = _loops(ir.triggers[("bids", 1)])
        # The fused loop's guard compares against a hoisted temp, not an
        # inline lookup of the total-volume map.
        guards = [s for s in walk_stmts(loop.body) if isinstance(s, IfCond)]
        assert guards
        assert isinstance(guards[0].cond, Compare)
        assert isinstance(guards[0].cond.right, Name)
        # ... and the temp is assigned before the loop from the lookup.
        block = next(
            s
            for s in ir.triggers[("bids", 1)].body
            if isinstance(s, Block) and loop in s.stmts
        )
        hoists = [s for s in block.stmts if isinstance(s, Assign)]
        assert any("m2_bids" in repr(h.value) for h in hoists)

    def test_vwap_dead_bindings_pruned(self, catalog):
        program = compile_sql(VWAP_SQL, catalog)
        ir = lower_program(program)
        (loop,) = _loops(ir.triggers[("bids", 1)])
        # Only price (pos 3) and volume (pos 4) feed the body.
        assert [pos for pos, _ in loop.binds] == [3, 4]

    def test_float_relations_block_reordering_fusion(self, catalog):
        float_vwap = VWAP_SQL.replace("FROM bids", "FROM fbids")
        program = compile_sql(float_vwap, catalog)
        assert "fbids" in program.float_relations
        ir = lower_program(program)
        # Moving the second scan past intermediate writers would reorder
        # float additions, so both loops must survive.
        assert len(_loops(ir.triggers[("fbids", 1)])) == 2

    def test_exact_value_maps_classification(self, catalog):
        program = compile_sql(VWAP_SQL, catalog)
        exact = exact_value_maps(program)
        assert set(program.maps) == set(exact)
        float_program = compile_sql(
            VWAP_SQL.replace("FROM bids", "FROM fbids"), catalog
        )
        assert not exact_value_maps(float_program)

    def test_no_dead_maps_in_bundled_queries(self, catalog):
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

        fin_cat = finance_catalog()
        for name, sql in FINANCE_QUERIES.items():
            assert not dead_map_names(compile_sql(sql, fin_cat, name=name))

    def test_pass_list_recorded(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        assert lower_program(program).passes == DEFAULT_PASSES
        assert lower_program(program, optimize=False).passes == ()

    def test_cse_rename_dies_on_reassignment(self):
        """A kept reassignment of a CSE-dropped name must end the alias:
        later reads must see the new binding, not the stale temp."""
        from repro.ir.nodes import Accum, Prod, Sum
        from repro.ir.optimize import _cse_sequence

        p, q = Name("p"), Name("q")
        stmts = (
            Assign("a", Prod((p, q))),
            Assign("v", Prod((p, q))),  # CSE hit: dropped, v -> a
            Accum("acc", Name("v")),  # becomes acc += a
            Assign("v", Sum((p, Const(1)))),  # kept reassignment
            Accum("acc", Name("v")),  # must read v, NOT a
        )
        out = _cse_sequence(stmts, {}, {})
        assert out[1] == Accum("acc", Name("a"))
        assert out[-1] == Accum("acc", Name("v"))

    def test_cse_shares_fused_product(self, catalog):
        """After fusion + guard merge, both pending appends read the same
        temp (the per-entry product is computed once)."""
        program = compile_sql(VWAP_SQL, catalog)
        ir = lower_program(program)
        (loop,) = _loops(ir.triggers[("bids", 1)])
        from repro.ir.nodes import AppendTo

        appends = [
            s for s in walk_stmts(loop.body) if isinstance(s, AppendTo)
        ]
        assert len(appends) == 2
        assert appends[0].value == appends[1].value


class TestPrettyPrinter:
    def test_program_str_sections(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        text = program_str(lower_program(program))
        assert "== IR maps ==" in text
        assert "== IR passes ==" in text
        assert "trigger on_insert_r(" in text
        assert "trigger on_insert_r_batch(" in text

    def test_trigger_str_shows_loops_and_updates(self, catalog):
        program = compile_sql(PAPER_SQL, catalog)
        ir = lower_program(program)
        text = trigger_str(ir.triggers[("T", 1)])
        assert "foreach (" in text
        assert "+=" in text

    def test_lookup_default_rendered(self):
        from repro.ir.nodes import Slot
        from repro.ir.pretty import expr_str

        assert expr_str(Lookup(Slot("m"), (Const(3),))) == "lookup(m[3], 0)"
