"""Volcano interpreter tests: plans, semantics, cross-check vs calculus."""

import pytest

from repro.sql.binder import bind_query
from repro.sql.catalog import Catalog
from repro.sql.parser import parse_query
from repro.interpreter.executor import execute_query
from repro.interpreter.relations import Database, Table
from repro.runtime.events import StreamEvent
from repro.errors import EventError


@pytest.fixture
def catalog():
    return Catalog.from_script(
        """
        CREATE STREAM R (A int, B int);
        CREATE STREAM S (B int, C int);
        CREATE STREAM T (C int, D int);
        CREATE STREAM bids (broker_id int, price int, volume int);
        CREATE STREAM asks (broker_id int, price int, volume int);
        """
    )


@pytest.fixture
def db(catalog):
    database = Database(catalog)
    database.load("R", [(1, 10), (2, 20)])
    database.load("S", [(10, 100), (20, 200), (20, 300)])
    database.load("T", [(100, 5), (200, 7), (300, 11)])
    database.load("bids", [(1, 100, 10), (1, 101, 20), (2, 99, 5)])
    database.load("asks", [(1, 102, 8), (2, 100, 12), (3, 103, 4)])
    return database


def run(sql, catalog, db):
    return execute_query(bind_query(parse_query(sql), catalog), db)


class TestTables:
    def test_insert_delete_multiset(self, catalog):
        table = Table(catalog.get("R"))
        table.insert((1, 2))
        table.insert((1, 2))
        assert len(table) == 2
        assert table.distinct_count() == 1
        table.delete((1, 2))
        assert len(table) == 1
        table.delete((1, 2))
        assert len(table) == 0

    def test_delete_absent_raises(self, catalog):
        table = Table(catalog.get("R"))
        with pytest.raises(EventError):
            table.delete((9, 9))

    def test_database_apply(self, catalog):
        database = Database(catalog)
        database.apply(StreamEvent("R", 1, (1, 2)))
        assert database.total_rows() == 1
        database.apply(StreamEvent("R", -1, (1, 2)))
        assert database.total_rows() == 0


class TestExecution:
    def test_paper_chain_join(self, catalog, db):
        rows = run(
            "SELECT sum(r.A * t.D) FROM R r, S s, T t "
            "WHERE r.B = s.B AND s.C = t.C",
            catalog,
            db,
        )
        assert rows == [(41,)]

    def test_group_by(self, catalog, db):
        rows = run(
            "SELECT broker_id, sum(price * volume) FROM bids GROUP BY broker_id",
            catalog,
            db,
        )
        assert rows == [(1, 3020), (2, 495)]

    def test_empty_scalar_query(self, catalog):
        database = Database(catalog)
        rows = run("SELECT sum(volume), count(*) FROM bids", catalog, database)
        assert rows == [(0, 0)]

    def test_avg_and_minmax(self, catalog, db):
        rows = run(
            "SELECT broker_id, avg(price), min(volume), max(volume) "
            "FROM bids GROUP BY broker_id",
            catalog,
            db,
        )
        assert rows == [(1, 100.5, 10, 20), (2, 99.0, 5, 5)]

    def test_or_and_not(self, catalog, db):
        rows = run(
            "SELECT sum(volume) FROM bids WHERE price = 100 OR price = 99",
            catalog,
            db,
        )
        assert rows == [(15,)]
        rows = run(
            "SELECT sum(volume) FROM bids WHERE NOT price = 100", catalog, db
        )
        assert rows == [(25,)]

    def test_correlated_exists(self, catalog, db):
        rows = run(
            "SELECT sum(b.volume) FROM bids b WHERE EXISTS "
            "(SELECT a.price FROM asks a WHERE a.broker_id = b.broker_id)",
            catalog,
            db,
        )
        assert rows == [(35,)]

    def test_scalar_subquery(self, catalog, db):
        rows = run(
            "SELECT sum(b.price * b.volume) FROM bids b "
            "WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)",
            catalog,
            db,
        )
        assert rows == [(3020,)]

    def test_in_subquery(self, catalog, db):
        rows = run(
            "SELECT sum(b.volume) FROM bids b WHERE b.broker_id IN "
            "(SELECT a.broker_id FROM asks a WHERE a.volume > 10)",
            catalog,
            db,
        )
        assert rows == [(5,)]

    def test_cross_product_when_disconnected(self, catalog, db):
        rows = run(
            "SELECT sum(r.A * t.D) FROM R r, T t",
            catalog,
            db,
        )
        # (1+2) * (5+7+11) = 69
        assert rows == [(69,)]

    def test_self_join(self, catalog, db):
        rows = run(
            "SELECT sum(b1.volume * b2.volume) FROM bids b1, bids b2 "
            "WHERE b1.broker_id = b2.broker_id",
            catalog,
            db,
        )
        # broker 1: (10+20)^2 = 900; broker 2: 25 -> 925
        assert rows == [(925,)]


class TestCrossCheckCalculus:
    """The volcano interpreter and the calculus evaluator must agree."""

    QUERIES = [
        "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C",
        "SELECT broker_id, sum(volume), count(*) FROM bids GROUP BY broker_id",
        "SELECT sum(b.volume) FROM bids b, asks a WHERE b.broker_id = a.broker_id "
        "AND a.price > b.price",
        "SELECT sum(volume) FROM bids WHERE price BETWEEN 99 AND 101",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_agreement(self, sql, catalog, db):
        from repro.algebra.translate import translate_sql
        from tests.integration.test_engine_vs_oracle import oracle_rows

        translated = translate_sql(sql, catalog, name="q")
        expected = sorted(oracle_rows(translated, db.as_gmrs()), key=repr)
        got = sorted(run(sql, catalog, db), key=repr)
        assert got == expected
