"""Report-shape coverage for ``benchmarks/bench_memory.py``.

The memory benchmark is CI's storage-layout gate (smoke-run like the
other benches): these tests pin the shape of its report rows, the
acceptance check, and the JSON payload — on a tiny stream so the suite
stays fast.  The measured *numbers* are the benchmark's business; the
suite only asserts structure and the invariants the script itself
relies on (maps equal across layouts, entries counted once).
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS.parent))

import benchmarks.bench_memory as bench_memory  # noqa: E402

ROW_KEYS = {
    "query",
    "entries",
    "dict_bytes",
    "columnar_bytes",
    "dict_bytes_per_entry",
    "columnar_bytes_per_entry",
    "ratio",
    "plan",
}


@pytest.fixture(scope="module")
def rows():
    return bench_memory.storage_table(event_count=400)


def test_rows_cover_measured_queries(rows):
    assert set(rows) == set(bench_memory.MEASURED_QUERIES)
    assert set(bench_memory.TARGET_QUERIES) <= set(rows)


def test_row_shape(rows):
    for query, row in rows.items():
        assert set(row) == ROW_KEYS
        assert row["query"] == query
        assert row["entries"] >= 1
        assert row["dict_bytes"] > 0 and row["columnar_bytes"] > 0
        assert row["ratio"] == pytest.approx(
            row["dict_bytes"] / row["columnar_bytes"]
        )
        assert row["plan"]  # per-map storage labels
        assert all(
            label == "dict" or label.startswith("columnar[")
            for label in row["plan"].values()
        )


def test_check_target_logic(capsys):
    def fake(ratios):
        return {
            query: {"ratio": ratios.get(query, 1.0)}
            for query in bench_memory.MEASURED_QUERIES
        }

    assert bench_memory.check_target(fake({"vwap": 2.5, "mst": 2.1}))
    assert not bench_memory.check_target(fake({"vwap": 2.5}))
    capsys.readouterr()


def test_main_smoke_writes_json(tmp_path, capsys):
    payload_path = tmp_path / "BENCH_memory.json"
    exit_code = bench_memory.main(
        ["--events", "600", "--json", str(payload_path)]
    )
    out = capsys.readouterr().out
    assert "per-entry map memory" in out
    assert "state contrast" in out
    payload = json.loads(payload_path.read_text())
    assert payload["benchmark"] == "memory"
    assert payload["metadata"]["target_queries"] == list(
        bench_memory.TARGET_QUERIES
    )
    for query in bench_memory.MEASURED_QUERIES:
        assert f"storage/{query}/ratio" in payload["metrics"]
    # On a real run the acceptance target holds and the exit code is 0;
    # tiny streams may legitimately miss it, but 600 events suffice.
    assert exit_code == 0
