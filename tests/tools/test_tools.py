"""Tests for the demonstration tooling: trace table and CLI."""

import pytest

from repro.compiler import compile_sql
from repro.sql.catalog import Catalog
from repro.tools.trace import (
    compilation_rows,
    compilation_table,
    ir_summary,
    recursion_summary,
)
from repro.tools.cli import build_parser, main as cli_main

DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""
PAPER_SQL = "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C"


@pytest.fixture(scope="module")
def program():
    return compile_sql(PAPER_SQL, Catalog.from_script(DDL))


class TestTrace:
    def test_three_recursion_levels(self, program):
        """Figure 2 has levels 1-3 for the example query."""
        rows = compilation_rows(program)
        assert {r["level"] for r in rows} == {1, 2, 3}

    def test_level3_is_the_count_map(self, program):
        rows = [r for r in compilation_rows(program) if r["level"] == 3]
        assert rows
        assert all("S(__k0,__k1)" in r["query"] for r in rows)
        # q1[b,c] maintenance is the constant +-1, using no maps.
        assert all(not r["maps_used"] for r in rows)

    def test_insert_s_row_shows_join_elimination(self, program):
        rows = [
            r
            for r in compilation_rows(program)
            if r["level"] == 1 and r["event"] == "+S"
        ]
        assert len(rows) == 1
        assert len(rows[0]["maps_used"]) == 2  # qA[b] * qD[c]

    def test_table_renders(self, program):
        table = compilation_table(program)
        assert "lvl" in table and "+R" in table and "-T" in table
        assert len(table.splitlines()) == 2 + len(compilation_rows(program))

    def test_recursion_summary(self, program):
        summary = recursion_summary(program)
        assert summary[0] == 1  # the root map
        assert sum(summary.values()) == len(program.maps)

    def test_ir_summary_line(self, program):
        line = ir_summary(program)
        assert line.startswith("IR: ")
        assert "map loops" in line
        assert "passes:" in line
        assert "disabled" in ir_summary(program, optimize=False)


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_command(self, capsys):
        rc = cli_main(
            [
                "compile",
                "--schema",
                DDL,
                "--query",
                PAPER_SQL,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 2 trace" in out
        assert "maps per recursion level" in out
        assert "IR: " in out  # the IR lowering is part of the trace

    def test_compile_dump_ir(self, capsys):
        rc = cli_main(
            ["compile", "--schema", DDL, "--query", PAPER_SQL, "--dump-ir"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== trigger IR ==" in out
        assert "trigger on_insert_r(" in out
        assert "trigger on_insert_r_batch(" in out
        assert "foreach (" in out  # the T-side foreach survives lowering

    def test_compile_dump_ir_no_opt(self, capsys):
        rc = cli_main(
            [
                "compile",
                "--schema",
                DDL,
                "--query",
                PAPER_SQL,
                "--dump-ir",
                "--no-opt",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== IR passes ==\n(none)" in out

    def test_compile_emit_python(self, capsys):
        rc = cli_main(
            ["compile", "--schema", DDL, "--query", PAPER_SQL, "--emit", "python"]
        )
        assert rc == 0
        assert "def on_insert_r" in capsys.readouterr().out

    def test_run_command_over_csv(self, tmp_path, capsys):
        stream = tmp_path / "events.csv"
        stream.write_text(
            "op,relation,values...\n"
            "+,R,2,10\n+,S,10,100\n+,T,100,7\n-,R,2,10\n+,R,5,10\n"
        )
        rc = cli_main(
            [
                "run",
                "--schema",
                DDL,
                "--query",
                PAPER_SQL,
                "--stream",
                str(stream),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "(35,)" in out  # 5 * 7

    def test_run_command_sharded(self, tmp_path, capsys):
        """--shards routes the stream through a ShardedEngine and still
        prints the exact final result."""
        stream = tmp_path / "events.csv"
        stream.write_text(
            "op,relation,values...\n"
            "+,R,2,10\n+,S,10,100\n+,T,100,7\n-,R,2,10\n+,R,5,10\n"
        )
        rc = cli_main(
            [
                "run",
                "--schema",
                DDL,
                "--query",
                PAPER_SQL,
                "--stream",
                str(stream),
                "--shards",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "(35,)" in out  # 5 * 7, identical to the single-engine run

    def test_run_command_no_opt(self, tmp_path, capsys):
        stream = tmp_path / "events.csv"
        stream.write_text("op,relation,values...\n+,R,2,10\n")
        rc = cli_main(
            [
                "run",
                "--schema",
                DDL,
                "--query",
                PAPER_SQL,
                "--stream",
                str(stream),
                "--no-opt",
            ]
        )
        assert rc == 0
        assert "final result" in capsys.readouterr().out

    def test_serve_oneshot_streams_and_prints_result(self, tmp_path, capsys):
        """serve --oneshot binds a live server, streams the CSV through
        the serving ingest path, and prints the same final result as
        run."""
        stream = tmp_path / "events.csv"
        stream.write_text(
            "op,relation,values...\n"
            "+,R,2,10\n+,S,10,100\n+,T,100,7\n-,R,2,10\n+,R,5,10\n"
        )
        rc = cli_main(
            [
                "serve",
                "--schema",
                DDL,
                "--query",
                PAPER_SQL,
                "--stream",
                str(stream),
                "--oneshot",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving view 'q'" in out
        assert "streamed 5 events" in out
        assert "(35,)" in out  # 5 * 7, identical to the run command

    def test_bench_command(self, capsys):
        rc = cli_main(
            ["bench", "--workload", "finance", "--query", "psp", "--events", "2000"]
        )
        assert rc == 0
        assert "events/s" in capsys.readouterr().out

    def test_bench_command_no_opt(self, capsys):
        rc = cli_main(
            [
                "bench",
                "--workload",
                "finance",
                "--query",
                "psp",
                "--events",
                "2000",
                "--no-opt",
            ]
        )
        assert rc == 0
        assert "events/s" in capsys.readouterr().out

    def test_missing_schema_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["compile", "--query", PAPER_SQL])
