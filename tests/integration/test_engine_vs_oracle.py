"""End-to-end correctness: every engine mode vs the calculus oracle.

For a diverse suite of SQL query shapes we drive identical random streams of
inserts and deletes through the compiled engine, the interpreted engine, and
the first-order (classical IVM) compiled variant, and after every event
compare their full result sets to re-evaluating the translated query on the
accumulated database with the reference evaluator.

This one test family subsumes: recursive compilation, map sharing, trigger
ordering, code generation, group-by semantics (incl. group disappearance),
avg/min/max rendering, and nested-aggregate fallback compilation.
"""

import random

import pytest

from repro.algebra.eval import eval_expr
from repro.algebra.translate import eval_result
from repro.compiler import CompileOptions, compile_queries
from repro.algebra.translate import translate_sql
from repro.runtime import DeltaEngine, StreamEvent
from repro.sql.catalog import Catalog

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
CREATE STREAM bids (broker_id int, price int, volume int);
CREATE STREAM asks (broker_id int, price int, volume int);
"""

QUERIES = {
    "chain_join": (
        "SELECT sum(r.A * t.D) FROM R r, S s, T t "
        "WHERE r.B = s.B AND s.C = t.C"
    ),
    "grouped": (
        "SELECT broker_id, sum(price * volume), count(*) FROM bids "
        "GROUP BY broker_id"
    ),
    "avg": "SELECT broker_id, avg(price) FROM bids GROUP BY broker_id",
    "minmax": (
        "SELECT broker_id, min(price), max(price) FROM bids GROUP BY broker_id"
    ),
    "self_join": (
        "SELECT sum(b1.volume * b2.volume) FROM bids b1, bids b2 "
        "WHERE b1.broker_id = b2.broker_id"
    ),
    "two_way_grouped": (
        "SELECT b.broker_id, sum(a.volume) - sum(b.volume) "
        "FROM bids b, asks a WHERE b.broker_id = a.broker_id "
        "GROUP BY b.broker_id"
    ),
    "axfinder": (
        "SELECT b.broker_id, sum(a.volume) - sum(b.volume) "
        "FROM bids b, asks a WHERE b.broker_id = a.broker_id "
        "AND a.price - b.price < 3 AND b.price - a.price < 3 "
        "GROUP BY b.broker_id"
    ),
    "exists_correlated": (
        "SELECT sum(b.volume) FROM bids b WHERE EXISTS "
        "(SELECT a.broker_id FROM asks a WHERE a.broker_id = b.broker_id)"
    ),
    "in_subquery": (
        "SELECT sum(b.volume) FROM bids b WHERE b.broker_id IN "
        "(SELECT a.broker_id FROM asks a WHERE a.volume > 2)"
    ),
    "vwap_nested": (
        "SELECT sum(b.price * b.volume) FROM bids b "
        "WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)"
    ),
    "or_predicate": (
        "SELECT sum(volume) FROM bids WHERE price < 3 OR price > 7"
    ),
    "not_in": (
        "SELECT sum(b.volume) FROM bids b WHERE b.broker_id NOT IN "
        "(SELECT a.broker_id FROM asks a)"
    ),
}

_RELATION_ARITY = {"R": 2, "S": 2, "T": 2, "bids": 3, "asks": 3}


def oracle_rows(query, db):
    """Re-evaluate a translated query from scratch against ``db``."""
    slot_results = []
    for spec in query.aggregates:
        cols, rows = eval_expr(spec.expr, {}, db)
        slot_results.append(rows)

    if not query.is_grouped:
        values = [rows.get((), 0) for rows in slot_results]
        # min/max scalar slots hold occurrence rows, not the value itself.
        for index, spec in enumerate(query.aggregates):
            if spec.kind in ("min", "max"):
                present = [k[-1] for k, v in slot_results[index].items() if v != 0]
                if present:
                    values[index] = min(present) if spec.kind == "min" else max(present)
                else:
                    values[index] = 0
        return [
            tuple(eval_result(i.result, (), values) for i in query.items)
        ]

    if query.count_slot is not None:
        groups = {
            k for k, v in slot_results[query.count_slot].items() if v != 0
        }
    else:
        groups = set()
        for spec, rows in zip(query.aggregates, slot_results):
            width = len(spec.group_vars)
            groups.update(k[:width] for k in rows)
    out = []
    for key in sorted(groups, key=repr):
        values = []
        for spec, rows in zip(query.aggregates, slot_results):
            if spec.kind in ("min", "max"):
                present = [
                    k[-1]
                    for k, v in rows.items()
                    if v != 0 and k[:-1] == key
                ]
                if present:
                    values.append(min(present) if spec.kind == "min" else max(present))
                else:
                    values.append(0)
            else:
                values.append(rows.get(key, 0))
        out.append(tuple(eval_result(i.result, key, values) for i in query.items))
    return out


def random_stream(relations, steps, seed, domain=4):
    """A random insert/delete stream keeping deletions valid."""
    rng = random.Random(seed)
    live = {rel: [] for rel in relations}
    events = []
    for _ in range(steps):
        rel = rng.choice(relations)
        if live[rel] and rng.random() < 0.4:
            tup = live[rel].pop(rng.randrange(len(live[rel])))
            events.append(StreamEvent(rel, -1, tup))
        else:
            tup = tuple(
                rng.randint(0, domain) for _ in range(_RELATION_ARITY[rel])
            )
            live[rel].append(tup)
            events.append(StreamEvent(rel, 1, tup))
    return events


def run_comparison(sql, engines_options, steps=220, seed=7, check_every=1):
    catalog = Catalog.from_script(CATALOG_DDL)
    query = translate_sql(sql, catalog, name="q")
    engines = {}
    for label, (mode, options) in engines_options.items():
        program = compile_queries(
            [translate_sql(sql, catalog, name="q")], catalog, options
        )
        engines[label] = DeltaEngine(program, mode=mode)

    relations = list(query.relations)
    db = {rel: {} for rel in relations}
    events = random_stream(relations, steps, seed)
    for step, event in enumerate(events):
        for engine in engines.values():
            engine.process(event)
        contents = db[event.relation]
        key = event.values
        contents[key] = contents.get(key, 0) + event.sign
        if contents[key] == 0:
            del contents[key]
        if step % check_every:
            continue
        expected = sorted(oracle_rows(query, db), key=repr)
        for label, engine in engines.items():
            got = sorted(engine.results("q"), key=repr)
            assert got == expected, (
                f"{label} diverged at step {step} after {event}:\n"
                f"  got      {got}\n  expected {expected}"
            )


ALL_MODES = {
    "compiled": ("compiled", None),
    "interpreted": ("interpreted", None),
    "first_order": ("compiled", CompileOptions(derived_maps=False)),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_engines_match_oracle(name):
    run_comparison(QUERIES[name], ALL_MODES)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chain_join_more_seeds(seed):
    run_comparison(QUERIES["chain_join"], ALL_MODES, steps=300, seed=seed)


def test_multi_query_program_shares_maps_and_stays_correct():
    catalog = Catalog.from_script(CATALOG_DDL)
    sqls = [QUERIES["grouped"], QUERIES["two_way_grouped"], QUERIES["avg"]]
    queries = [
        translate_sql(sql, catalog, name=f"q{i}") for i, sql in enumerate(sqls)
    ]
    program = compile_queries(queries, catalog)
    engine = DeltaEngine(program, mode="compiled")
    db = {"bids": {}, "asks": {}}
    for event in random_stream(["bids", "asks"], 260, seed=11):
        engine.process(event)
        contents = db[event.relation]
        key = event.values
        contents[key] = contents.get(key, 0) + event.sign
        if contents[key] == 0:
            del contents[key]
    for i, query in enumerate(queries):
        expected = sorted(oracle_rows(query, db), key=repr)
        got = sorted(engine.results(f"q{i}"), key=repr)
        assert got == expected
