"""Differential testing against sqlite3 (see ``sql_oracle.py``).

The non-linear aggregates (MIN/MAX, DISTINCT, COUNT(DISTINCT ...)) are
the focus: their auxiliary caches are maintained by Finalize statements
with a re-derivation path on extremum deletes, which no linear parity
suite exercises.  The harness replays identical random insert/delete
streams — biased towards deleting the current extremum — into the
engines and an in-memory sqlite3 database, asserting repr-normalised
result parity at every batch boundary, across:

* compiled and interpreted engines, batch sizes 1-100 (hypothesis);
* sharded engines with 1-4 lanes;
* the bundled non-linear finance workloads (``bbo``, ``act``) and the
  existing linear query shapes (sum/count/avg, joins, nesting);
* the native backend's forced-off and declined configurations;
* a SIGKILL crash / recover cycle of a durable engine.
"""

import os
import signal
import sys
from functools import lru_cache
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.compiler import compile_sql
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.sql.catalog import Catalog
from tests.integration.sql_oracle import (
    SqliteOracle,
    assert_rows_match,
    normalize_rows,
    oracle_stream,
    run_differential,
)

CATALOG_DDL = """
CREATE STREAM bids (broker_id int, price int, volume int);
CREATE STREAM asks (broker_id int, price int, volume int);
"""

NONLINEAR_QUERIES = {
    "minmax_grouped": (
        "SELECT broker_id, min(price), max(price) FROM bids "
        "GROUP BY broker_id"
    ),
    "scalar_extrema": (
        "SELECT min(price), max(price), count(DISTINCT broker_id) FROM bids"
    ),
    "count_distinct_grouped": (
        "SELECT price, count(DISTINCT broker_id) FROM bids GROUP BY price"
    ),
    "select_distinct": "SELECT DISTINCT broker_id, price FROM bids",
    "join_minmax": (
        "SELECT b.broker_id, max(b.price), min(a.price) "
        "FROM bids b, asks a WHERE b.broker_id = a.broker_id "
        "GROUP BY b.broker_id"
    ),
    "mixed": (
        "SELECT broker_id, sum(volume), max(price), count(DISTINCT price) "
        "FROM bids GROUP BY broker_id"
    ),
}

LINEAR_QUERIES = {
    "grouped_sum": (
        "SELECT broker_id, sum(price * volume), count(*) FROM bids "
        "GROUP BY broker_id"
    ),
    "avg": "SELECT broker_id, avg(price) FROM bids GROUP BY broker_id",
    "join_sum": (
        "SELECT b.broker_id, sum(a.price * a.volume) - "
        "sum(b.price * b.volume) FROM bids b, asks a "
        "WHERE b.broker_id = a.broker_id GROUP BY b.broker_id"
    ),
    "vwap_nested": (
        "SELECT sum(b.price * b.volume) FROM bids b "
        "WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)"
    ),
    "exists_correlated": (
        "SELECT sum(b.volume) FROM bids b WHERE EXISTS "
        "(SELECT a.broker_id FROM asks a WHERE a.broker_id = b.broker_id)"
    ),
}

ALL_QUERIES = {**NONLINEAR_QUERIES, **LINEAR_QUERIES}


@lru_cache(maxsize=None)
def _catalog() -> Catalog:
    return Catalog.from_script(CATALOG_DDL)


@lru_cache(maxsize=None)
def _program(query_name: str):
    return compile_sql(ALL_QUERIES[query_name], _catalog(), name="q")


def _events(query_name: str, steps: int, seed: int):
    """A live-delete stream over the query's relations, attacking the
    price column's extrema (index 1 in both schemas)."""
    program = _program(query_name)
    catalog = _catalog()
    relations = {
        rel: catalog.get(rel).arity
        for rel in sorted({rel for rel, _ in program.triggers})
    }
    return oracle_stream(
        relations, steps, seed, domain=6,
        attack={rel: 1 for rel in relations},
    )


def _oracle(query_name: str) -> SqliteOracle:
    return SqliteOracle(_catalog(), ALL_QUERIES[query_name])


# ---------------------------------------------------------------------------
# Randomised streams (hypothesis): the bulk of the ≥200-stream budget
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query_name", sorted(NONLINEAR_QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@settings(max_examples=18, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    batch_size=st.integers(min_value=1, max_value=100),
)
def test_nonlinear_matches_sqlite(query_name, mode, seed, batch_size):
    engine = DeltaEngine(_program(query_name), mode=mode)
    run_differential(
        engine, _oracle(query_name), _events(query_name, 110, seed),
        batch_size=batch_size,
    )


@pytest.mark.parametrize("query_name", sorted(LINEAR_QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    batch_size=st.integers(min_value=1, max_value=100),
)
def test_linear_matches_sqlite(query_name, mode, seed, batch_size):
    """The oracle is not non-linear-only: the linear surface runs too."""
    engine = DeltaEngine(_program(query_name), mode=mode)
    run_differential(
        engine, _oracle(query_name), _events(query_name, 110, seed),
        batch_size=batch_size,
    )


# ---------------------------------------------------------------------------
# Deterministic legs: sharding, extremum eviction, finance workloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "query_name", ["join_minmax", "count_distinct_grouped", "minmax_grouped"]
)
@pytest.mark.parametrize("shards", [1, 2, 3, 4])
def test_sharded_matches_sqlite(query_name, shards):
    """Lane-merged auxiliary caches (rebuilt from merged occurrence maps,
    never summed) must equal sqlite at every boundary."""
    for seed in (3, 44):
        with ShardedEngine(_program(query_name), shards=shards) as engine:
            run_differential(
                engine, _oracle(query_name), _events(query_name, 140, seed),
                batch_size=13,
            )


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_extremum_delete_rederivation(mode):
    """Deleting the stored extremum forces a re-derive from the occurrence
    map — checked per event on an adversarial insert/delete sequence."""
    engine = DeltaEngine(_program("minmax_grouped"), mode=mode)
    oracle = _oracle("minmax_grouped")
    events = []
    for price in range(12):  # ascending: every insert moves the max
        events.append(StreamEvent("bids", 1, (1, price, 1)))
    for price in range(11, -1, -1):  # delete max first, then next...
        events.append(StreamEvent("bids", -1, (1, price, 1)))
    for price in (5, 5, 3, 9):  # duplicates: eviction with a tie survivor
        events.append(StreamEvent("bids", 1, (2, price, 1)))
    events.append(StreamEvent("bids", -1, (2, 9, 1)))  # unique max dies
    events.append(StreamEvent("bids", -1, (2, 5, 1)))  # tied copy remains
    events.append(StreamEvent("bids", -1, (2, 3, 1)))  # min re-derives to 5
    run_differential(engine, oracle, events, batch_size=1)


@pytest.mark.parametrize("query_name", ["bbo", "act"])
@pytest.mark.parametrize("mode,batch_size", [
    ("compiled", 1), ("compiled", 64), ("interpreted", 23),
])
def test_finance_nonlinear_matches_sqlite(query_name, mode, batch_size):
    """The bundled non-linear finance workloads against real book traffic."""
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES[query_name], catalog, name="q")
    engine = DeltaEngine(program, mode=mode)
    oracle = SqliteOracle(catalog, FINANCE_QUERIES[query_name])
    events = list(OrderBookGenerator(seed=2009).events(400))
    run_differential(engine, oracle, events, batch_size=batch_size)


# ---------------------------------------------------------------------------
# Native backend: declined plans and the forced-off configuration
# ---------------------------------------------------------------------------


def test_native_plan_excludes_nonlinear_maps():
    """Eligibility is decided in the storage plan, up front: occurrence
    maps that feed Finalize and the auxiliary caches themselves never
    reach the C kernel."""
    from repro.compiler.storage import analyze_storage
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    for query_name in ("bbo", "act"):
        program = compile_sql(
            FINANCE_QUERIES[query_name], finance_catalog(), name="q"
        )
        plan = analyze_storage(program)
        assert program.finalizers, query_name
        native = set(plan.native_maps)
        for occ_name, specs in program.finalizers.items():
            storage = plan.storage_for(occ_name)
            assert occ_name not in native
            # Declined with a stated reason (the Finalize gate when
            # nothing else disqualified the map first).
            assert not storage.native and storage.native_reason
            for spec in specs:
                aux = plan.storage_for(spec.aux)
                assert spec.aux not in native
                assert aux.kind == "dict" and not aux.native
                assert "auxiliary" in (aux.reason or "")


@pytest.mark.parametrize("query_name", ["bbo", "act"])
def test_native_mode_declines_cleanly(query_name):
    """mode='native' on a non-linear program: the kernel may own the
    linear maps, but the Finalize-fed occurrence maps and auxiliary
    caches stay python-side (pinned by the storage-plan test above) — so
    the run completes with sqlite parity instead of ejecting mid-stream."""
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES[query_name], catalog, name="q")
    engine = DeltaEngine(program, mode="native")
    oracle = SqliteOracle(catalog, FINANCE_QUERIES[query_name])
    run_differential(
        engine, oracle, list(OrderBookGenerator(seed=7).events(150)),
        batch_size=16,
    )


@pytest.mark.parametrize("query_name", ["bbo", "act"])
def test_forced_native_off_parity(query_name):
    """The REPRO_NATIVE=off lane (CI's forced fallback) on the new
    workloads: pure-python storage, same sqlite parity."""
    from repro.codegen.native import probe_toolchain
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    saved = os.environ.get("REPRO_NATIVE")
    os.environ["REPRO_NATIVE"] = "off"
    try:
        probe_toolchain(refresh=True)
        catalog = finance_catalog()
        program = compile_sql(FINANCE_QUERIES[query_name], catalog, name="q")
        engine = DeltaEngine(program, mode="compiled")
        assert not engine.native_active
        oracle = SqliteOracle(catalog, FINANCE_QUERIES[query_name])
        run_differential(
            engine, oracle, list(OrderBookGenerator(seed=11).events(150)),
            batch_size=9,
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_NATIVE", None)
        else:
            os.environ["REPRO_NATIVE"] = saved
        probe_toolchain(refresh=True)


# ---------------------------------------------------------------------------
# Crash recovery: SIGKILL a durable engine mid-stream, recover, compare
# ---------------------------------------------------------------------------

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "runtime"))
from fault_injection import (  # noqa: E402
    assert_recovery_parity,
    build_program,
    run_to_crash,
    stream_events,
)


@pytest.mark.parametrize("workload,label,hits,snapshot_every", [
    ("bbo", "engine.after_append", 7, None),
    ("act", "engine.after_apply", 9, 4),
])
def test_sigkill_recover_matches_sqlite(
    tmp_path, workload, label, hits, snapshot_every
):
    """An actual SIGKILL mid-stream: the recovered auxiliary caches (and
    everything else) must equal both the fresh-engine reference and the
    sqlite oracle replaying the recovered LSN's prefix."""
    from repro.runtime.durability import recover_engine
    from repro.runtime.events import batches
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    n_events, seed, batch_size = 400, 2009, 16
    code = run_to_crash(
        tmp_path, label, hits, workload=workload, n_events=n_events,
        seed=seed, batch_size=batch_size, snapshot_every=snapshot_every,
    )
    assert code == -signal.SIGKILL
    program = build_program(workload)
    engine, lsn = recover_engine(program, tmp_path)
    assert lsn > 0
    assert_recovery_parity(engine, lsn, workload, n_events, seed, batch_size)

    oracle = SqliteOracle(finance_catalog(), FINANCE_QUERIES[workload])
    for index, batch in enumerate(
        batches(stream_events(workload, n_events, seed), batch_size)
    ):
        if index >= lsn:
            break
        oracle.apply_all(
            StreamEvent(batch.relation, batch.sign, tuple(row))
            for row in batch.rows
        )
    assert_rows_match(engine, oracle, "q", context=f" at recovered LSN {lsn}")


def test_normalize_rows_canonicalises():
    assert normalize_rows([(None, 2.0, 2.5, "x")]) == [(0, 2, 2.5, "x")]
