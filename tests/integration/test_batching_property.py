"""Batched execution must be indistinguishable from per-event execution.

Property (hypothesis, over the R/S/T strategies): for random event streams
and random batch sizes, driving the stream through ``process_stream``'s
batching path yields maps identical to ``process``-ing every event, in both
compiled and interpreted modes, with and without secondary indexes.  A
second, deterministic family checks the same identity on the bundled
finance and warehouse workloads (the streams the benchmarks measure).
"""

from functools import lru_cache

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries
from repro.runtime import DeltaEngine, StreamEvent
from repro.sql.catalog import Catalog
from tests.strategies import events

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

#: Query shapes chosen to cover straight-line triggers, foreach loops,
#: grouped targets, and the buffered (self-reading) two-phase path.
QUERIES = {
    "chain_join": (
        "SELECT sum(r.A * t.D) FROM R r, S s, T t "
        "WHERE r.B = s.B AND s.C = t.C"
    ),
    "grouped": "SELECT A, sum(B) FROM R GROUP BY A",
    "exists_correlated": (
        "SELECT sum(r.A) FROM R r WHERE EXISTS "
        "(SELECT s.C FROM S s WHERE s.B = r.B)"
    ),
}


@lru_cache(maxsize=None)
def _program(query_name: str):
    catalog = Catalog.from_script(CATALOG_DDL)
    translated = translate_sql(QUERIES[query_name], catalog, name="q")
    return compile_queries([translated], catalog)


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize(
    "mode,use_indexes",
    [("compiled", True), ("compiled", False), ("interpreted", True)],
)
@settings(max_examples=25, deadline=None)
@given(
    stream=st.lists(events(), max_size=40),
    batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
def test_batched_equals_per_event(query_name, mode, use_indexes, stream, batch_size):
    program = _program(query_name)
    reference = DeltaEngine(program, mode=mode, use_indexes=use_indexes)
    batched = DeltaEngine(program, mode=mode, use_indexes=use_indexes)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    for event in stream_events:
        reference.process(event)
    consumed = batched.process_stream(stream_events, batch_size=batch_size)
    assert consumed == len(stream_events)
    assert batched.maps == reference.maps
    assert batched.events_processed == reference.events_processed
    assert batched.events_skipped == reference.events_skipped


def _drive_both(program, stream_events, batch_sizes=(1, 13, 1000, None)):
    reference = DeltaEngine(program, mode="compiled")
    for event in stream_events:
        reference.process(event)
    for batch_size in batch_sizes:
        batched = DeltaEngine(program, mode="compiled")
        batched.process_stream(stream_events, batch_size=batch_size)
        assert batched.maps == reference.maps, f"batch_size={batch_size}"
        assert batched.results() == reference.results()


@pytest.mark.parametrize(
    "query_name", ["vwap", "axf", "bsp", "psp", "mst", "bbo", "act"]
)
def test_finance_workload_bit_identical(query_name):
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()
    translated = translate_sql(
        FINANCE_QUERIES[query_name], catalog, name=query_name
    )
    program = compile_queries([translated], catalog)
    stream_events = list(OrderBookGenerator(seed=2009).events(400))
    _drive_both(program, stream_events)


def test_warehouse_workload_bit_identical():
    from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog
    from repro.workloads.tpch import TpchGenerator

    catalog = ssb_catalog()
    translated = translate_sql(SSB_Q41_COMBINED, catalog, name="ssb41")
    program = compile_queries([translated], catalog)
    generator = TpchGenerator(sf=0.0004, seed=1992)
    stream_events = [
        StreamEvent(relation, 1, row)
        for relation, rows in generator.static_tables().items()
        for row in rows
    ] + [
        StreamEvent(relation, 1, row)
        for relation, row in generator.orders_and_lineitems()
    ]
    _drive_both(program, stream_events)
