"""Composable fault-schedule driver for end-to-end serving chaos tests.

One scenario = one engine/server configuration, one event stream, one
:class:`FaultSchedule` saying *when* to hurt it:

* ``kill_worker_at = (batch, lane)`` — SIGKILL a forked shard worker
  just before that batch is published (the supervisor must respawn and
  rebuild it);
* ``drop_client_at = batch`` — tear the observing subscriber's
  connection after that batch: half a length prefix is written (the
  server must log-and-reap the torn frame) and the socket is closed
  (the client must reconnect and resume from its last delivered LSN);
* ``restart_server_at = batch`` — stop the server after that batch and
  start a fresh one on the same port over the same engine (durable
  configurations only: LSNs must survive the restart);
* ``stalled_reader = True`` — attach a subscriber that never reads, on
  a server with a small queue and an idle timeout: it must be evicted
  (with a ``timeout`` frame) rather than pinning ``block`` ingest.

:func:`run_scenario` runs the stream twice — once fault-free, once
under the schedule — through identical configurations, and returns both
delta logs.  The contract under test: the faulted subscriber's
reassembled log is **repr-identical** to the fault-free one, and its
accumulated rows equal the engine's final results.  (Fault schedules
here never truncate the WAL, so ``resume_gap`` — whose fallback
legitimately rewrites the sequence — cannot occur; the gap path is
pinned separately in ``tests/runtime/test_serving.py``.)
"""

from __future__ import annotations

import os
import random
import signal
import socket
import struct
import time
from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.runtime import DeltaEngine, ShardedEngine
from repro.runtime.durability import DurableEngine
from repro.runtime.serving import (
    ReconnectingSubscriber,
    ServerThread,
    SubscriberClient,
    encode_frame,
)

#: Server knobs shared by the oracle and the faulted run.  The queue is
#: small so a stalled reader actually exerts backpressure; the idle
#: timeout evicts it well inside the watchdog budget.
QUEUE_FRAMES = 8
IDLE_TIMEOUT = 0.5


@dataclass
class FaultSchedule:
    """When to inject which fault, in published-batch indexes."""

    kill_worker_at: Optional[tuple[int, int]] = None  # (batch, lane)
    drop_client_at: Optional[int] = None
    restart_server_at: Optional[int] = None
    stalled_reader: bool = False

    def describe(self) -> str:
        parts = []
        if self.kill_worker_at is not None:
            parts.append(
                f"kill lane {self.kill_worker_at[1]} at batch "
                f"{self.kill_worker_at[0]}"
            )
        if self.drop_client_at is not None:
            parts.append(f"drop client at batch {self.drop_client_at}")
        if self.restart_server_at is not None:
            parts.append(f"restart server at batch {self.restart_server_at}")
        if self.stalled_reader:
            parts.append("stalled reader attached")
        return ", ".join(parts) or "fault-free"


def _make_engine(program, shards: int, durable: bool, directory):
    if durable:
        extra = {"parallel": True, "supervise": True} if shards > 1 else {}
        return DurableEngine(
            program, directory, fsync="none", shards=shards, **extra,
        )
    if shards > 1:
        return ShardedEngine(
            program, shards=shards, parallel=True,
            supervise=True, checkpoint_every=8,
        )
    return DeltaEngine(program)


def _lanes_of(engine):
    inner = getattr(engine, "engine", engine)
    return getattr(inner, "_lanes", None)


def _kill_lane(engine, lane: int) -> None:
    lanes = _lanes_of(engine)
    proc = lanes[lane % len(lanes)]._proc
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)


def _tear_connection(subscriber: ReconnectingSubscriber) -> None:
    """Kill the subscriber's socket mid-frame: half a length prefix out,
    then a hard close — the server sees a torn frame, the client a dead
    connection."""
    sock = subscriber._client._sock
    try:
        sock.sendall(b"\x00\x00")
    except OSError:
        pass
    sock.close()


class _StalledReader:
    """A subscriber that subscribes and then never reads again."""

    def __init__(self, host: str, port: int, view: str) -> None:
        self._sock = socket.create_connection((host, port), timeout=10)
        self._sock.sendall(encode_frame({"op": "subscribe", "view": view}))
        # Read just the snapshot reply, then go silent with a tiny
        # receive buffer so the server-side queue genuinely backs up.
        prefix = self._recv_exactly(4)
        (length,) = struct.unpack(">I", prefix)
        self._recv_exactly(length)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)

    def _recv_exactly(self, n: int) -> bytes:
        chunks = b""
        while len(chunks) < n:
            chunk = self._sock.recv(n - len(chunks))
            if not chunk:
                raise ConnectionError("server closed")
            chunks += chunk
        return chunks

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def _start_with_rebind_retry(handle, attempts: int = 50) -> None:
    """Start a server that reclaims a just-released port.  The previous
    server closes its sockets before ``stop()`` returns, but the kernel
    may hold the port briefly; reconnecting subscribers need the *same*
    port back, so retry the bind rather than picking a fresh one."""
    for attempt in range(attempts):
        try:
            handle.start()
            return
        except OSError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.1)


def _drive(program, batches, *, shards, durable, directory,
           schedule: FaultSchedule, seed: int):
    """One full run; returns (delta_log, rows, engine_rows, server_stats)."""
    engine = _make_engine(program, shards, durable, directory)
    handle = ServerThread(
        engine, queue_frames=QUEUE_FRAMES, idle_timeout=IDLE_TIMEOUT
    )
    handle.start()
    stalled = None
    subscriber = ReconnectingSubscriber(
        handle.host, handle.port, "q",
        backoff_base=0.01, backoff_max=0.2, timeout=30.0,
        rng=random.Random(seed),
    )
    stats = {"timed_out": 0, "reconnects": 0}
    try:
        if schedule.stalled_reader:
            stalled = _StalledReader(handle.host, handle.port, "q")
        for index, (relation, sign, rows) in enumerate(batches):
            if (
                schedule.kill_worker_at is not None
                and schedule.kill_worker_at[0] == index
            ):
                _kill_lane(engine, schedule.kill_worker_at[1])
            handle.publish(relation, sign, rows)
            if schedule.drop_client_at == index:
                _tear_connection(subscriber)
            if schedule.restart_server_at == index:
                port = handle.port
                handle.stop()
                handle = ServerThread(
                    engine, port=port,
                    queue_frames=QUEUE_FRAMES, idle_timeout=IDLE_TIMEOUT,
                )
                _start_with_rebind_retry(handle)
        final_lsn = handle.server.tap.lsn
        subscriber.pump_until(final_lsn, deadline=60.0)
        log = [
            (frame["lsn"], frame["changes"]) for frame in subscriber.deltas
        ]
        rows = Counter(subscriber.rows)
        engine_rows = Counter(engine.results("q"))
        stats["timed_out"] = handle.server.clients_timed_out
        stats["reconnects"] = subscriber.reconnects
        return log, rows, engine_rows, stats
    finally:
        subscriber.close()
        if stalled is not None:
            stalled.close()
        handle.stop()
        if hasattr(engine, "close"):
            engine.close()


def run_scenario(program, batches, *, shards=1, durable=False,
                 directory=None, schedule: Optional[FaultSchedule] = None,
                 oracle_directory=None, seed: int = 0) -> dict:
    """Run ``batches`` fault-free and under ``schedule``; both logs must
    agree.  Returns a report dict (see keys below); raises AssertionError
    on any parity violation."""
    schedule = schedule or FaultSchedule()
    oracle_log, oracle_rows, oracle_engine_rows, _ = _drive(
        program, batches, shards=shards, durable=durable,
        directory=oracle_directory, schedule=FaultSchedule(), seed=seed,
    )
    faulted_log, faulted_rows, engine_rows, stats = _drive(
        program, batches, shards=shards, durable=durable,
        directory=directory, schedule=schedule, seed=seed,
    )
    assert faulted_rows == engine_rows, (
        f"subscriber rows diverged from the engine under: "
        f"{schedule.describe()}"
    )
    assert oracle_rows == oracle_engine_rows
    assert repr(faulted_log) == repr(oracle_log), (
        f"delta log not repr-identical to the fault-free run under: "
        f"{schedule.describe()}\n"
        f"fault-free: {oracle_log!r}\nfaulted:    {faulted_log!r}"
    )
    return {
        "schedule": schedule.describe(),
        "deltas": len(faulted_log),
        "reconnects": stats["reconnects"],
        "timed_out": stats["timed_out"],
    }
