"""Sharded execution must be indistinguishable from a single engine.

Property (hypothesis, over the R/S/T strategies): for random event
streams, any shard count 1–4 and any batch size, a ``ShardedEngine``'s
merged maps, results and event counters equal a single ``DeltaEngine``
processing the same stream — in compiled and interpreted modes, for a
partitionable program (hash-routed lanes), a co-partitioned join, and a
non-partitionable program (serial fallback).  A deterministic family
pins the same identity on the finance workload streams the benchmarks
measure, including the forked worker-process backend.
"""

from functools import lru_cache

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.sql.catalog import Catalog
from tests.strategies import events

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

#: Shapes covering the three routing classes: hash-partitioned grouped
#: maps, co-partitioned join state on a shared key, and the serial lane.
QUERIES = {
    "grouped": "SELECT A, sum(B) FROM R GROUP BY A",
    "co_partitioned_join": (
        "SELECT r.B, sum(r.A * s.C) FROM R r, S s "
        "WHERE r.B = s.B GROUP BY r.B"
    ),
    "serial_chain_join": (
        "SELECT sum(r.A * t.D) FROM R r, S s, T t "
        "WHERE r.B = s.B AND s.C = t.C"
    ),
}


@lru_cache(maxsize=None)
def _program(query_name: str):
    catalog = Catalog.from_script(CATALOG_DDL)
    translated = translate_sql(QUERIES[query_name], catalog, name="q")
    return compile_queries([translated], catalog)


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@settings(max_examples=20, deadline=None)
@given(
    stream=st.lists(events(), max_size=40),
    shards=st.integers(min_value=1, max_value=4),
    batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
def test_sharded_equals_single_engine(query_name, mode, stream, shards, batch_size):
    program = _program(query_name)
    reference = DeltaEngine(program, mode=mode)
    sharded = ShardedEngine(program, shards=shards, mode=mode)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    for event in stream_events:
        reference.process(event)
    consumed = sharded.process_stream(stream_events, batch_size=batch_size)
    assert consumed == len(stream_events)
    assert sharded.merged_maps() == reference.maps
    assert sharded.results() == reference.results()
    assert sharded.events_processed == reference.events_processed
    assert sharded.events_skipped == reference.events_skipped


@pytest.mark.parametrize(
    "query_name", ["vwap", "axf", "bsp", "psp", "mst", "bbo", "act"]
)
@pytest.mark.parametrize("shards", [2, 4])
def test_finance_workload_sharded_identical(query_name, shards):
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()
    translated = translate_sql(
        FINANCE_QUERIES[query_name], catalog, name=query_name
    )
    program = compile_queries([translated], catalog)
    stream_events = list(OrderBookGenerator(seed=2009).events(400))
    reference = DeltaEngine(program, mode="compiled")
    for event in stream_events:
        reference.process(event)
    sharded = ShardedEngine(program, shards=shards)
    sharded.process_stream(stream_events, batch_size=64)
    assert sharded.merged_maps() == reference.maps
    assert sharded.results() == reference.results()


def test_warehouse_workload_sharded_identical():
    from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog
    from repro.workloads.tpch import TpchGenerator

    catalog = ssb_catalog()
    translated = translate_sql(SSB_Q41_COMBINED, catalog, name="ssb41")
    program = compile_queries([translated], catalog)
    generator = TpchGenerator(sf=0.0004, seed=1992)
    stream_events = [
        StreamEvent(relation, 1, row)
        for relation, rows in generator.static_tables().items()
        for row in rows
    ] + [
        StreamEvent(relation, 1, row)
        for relation, row in generator.orders_and_lineitems()
    ]
    reference = DeltaEngine(program)
    for event in stream_events:
        reference.process(event)
    sharded = ShardedEngine(program, shards=4)
    sharded.process_stream(stream_events, batch_size=128)
    assert sharded.merged_maps() == reference.maps
    assert sharded.results() == reference.results()
