"""sqlite3 differential-testing oracle for the delta engines.

The engines maintain query results incrementally; sqlite3 re-evaluates
the defining SQL from scratch over the accumulated table contents.  Any
divergence — group appearance/disappearance, MIN/MAX re-derivation after
an extremum delete, DISTINCT multiplicity crossings, float rendering —
surfaces as a normalised-row mismatch at a batch boundary.

Pieces:

* :class:`SqliteOracle` — mirrors a :class:`~repro.sql.catalog.Catalog`
  into an in-memory sqlite3 database, replays the same insert/delete
  stream, and evaluates the query's SQL directly;
* :func:`oracle_stream` — random insert/delete streams that only ever
  delete live rows (sqlite has no Z-set negative multiplicities), with an
  optional bias towards deleting the current extremum of a column (the
  MIN/MAX eviction/re-derive path);
* :func:`run_differential` — drives a stream through an engine and the
  oracle in lockstep, asserting repr-normalised parity at every batch
  boundary.

Used by ``tests/integration/test_sql_oracle.py``; see
``docs/ARCHITECTURE.md`` (testing notes) for how this harness relates to
the calculus oracle in ``test_engine_vs_oracle.py``.
"""

from __future__ import annotations

import random
import sqlite3
from typing import Mapping, Optional, Sequence

from repro.runtime import StreamEvent
from repro.sql.catalog import Catalog, SqlType

_SQLITE_TYPES = {
    SqlType.INT: "INTEGER",
    SqlType.FLOAT: "REAL",
    SqlType.STRING: "TEXT",
}


def normalize_value(value):
    """Canonical scalar: NULL becomes 0 (the engines' empty-aggregate
    rendering), integral floats collapse to ints (sqlite SUM of an INTEGER
    column is an int, engine ring sums may be floats), other floats are
    rounded past any accumulation-order noise."""
    if value is None:
        return 0
    if isinstance(value, float):
        if value == int(value):
            return int(value)
        return round(value, 9)
    return value


def normalize_rows(rows: Sequence[Sequence]) -> list[tuple]:
    """Rows as a canonical sorted list of normalised tuples."""
    return sorted(
        (tuple(normalize_value(v) for v in row) for row in rows), key=repr
    )


class SqliteOracle:
    """An in-memory sqlite3 mirror of one query over catalog relations."""

    def __init__(self, catalog: Catalog, sql: str) -> None:
        self.connection = sqlite3.connect(":memory:")
        self.sql = sql
        self._columns: dict[str, tuple[str, ...]] = {}
        for relation in catalog:
            columns = ", ".join(
                f"{c.name} {_SQLITE_TYPES[c.type]}" for c in relation.columns
            )
            self.connection.execute(
                f"CREATE TABLE {relation.name} ({columns})"
            )
            self._columns[relation.name.lower()] = relation.column_names

    def apply(self, event: StreamEvent) -> None:
        """Replay one engine event; deletes remove exactly one live row."""
        names = self._columns[event.relation.lower()]
        if event.sign == 1:
            placeholders = ", ".join("?" for _ in names)
            self.connection.execute(
                f"INSERT INTO {event.relation} VALUES ({placeholders})",
                event.values,
            )
            return
        match = " AND ".join(f"{name} = ?" for name in names)
        cursor = self.connection.execute(
            f"DELETE FROM {event.relation} WHERE rowid IN "
            f"(SELECT rowid FROM {event.relation} WHERE {match} LIMIT 1)",
            event.values,
        )
        if cursor.rowcount != 1:
            raise AssertionError(
                f"oracle stream deleted a row that is not live: "
                f"{event.relation}{event.values} (streams fed to the sqlite "
                "oracle must only delete previously inserted rows)"
            )

    def apply_all(self, events) -> None:
        for event in events:
            self.apply(event)

    def rows(self) -> list[tuple]:
        return normalize_rows(self.connection.execute(self.sql).fetchall())


def oracle_stream(
    relations: Mapping[str, int],
    steps: int,
    seed: int,
    domain: int = 5,
    attack: Optional[Mapping[str, int]] = None,
) -> list[StreamEvent]:
    """A random stream over ``{relation: arity}`` deleting only live rows.

    Small ``domain`` forces duplicate values (DISTINCT multiplicity
    transitions, extremum ties).  ``attack`` maps a relation to a column
    index: deletions on it preferentially remove the live row holding that
    column's current minimum or maximum, hammering the MIN/MAX
    eviction/re-derivation path.
    """
    rng = random.Random(seed)
    names = sorted(relations)
    live: dict[str, list[tuple]] = {name: [] for name in names}
    events: list[StreamEvent] = []
    for _ in range(steps):
        name = rng.choice(names)
        rows = live[name]
        if rows and rng.random() < 0.45:
            if attack and name in attack and rng.random() < 0.6:
                column = attack[name]
                pick = max if rng.random() < 0.5 else min
                row = pick(rows, key=lambda r: r[column])
                rows.remove(row)
            else:
                row = rows.pop(rng.randrange(len(rows)))
            events.append(StreamEvent(name, -1, row))
        else:
            row = tuple(
                rng.randint(0, domain) for _ in range(relations[name])
            )
            rows.append(row)
            events.append(StreamEvent(name, 1, row))
    return events


def assert_rows_match(engine, oracle: SqliteOracle, query_name="q", context=""):
    got = normalize_rows(engine.results(query_name))
    expected = oracle.rows()
    assert got == expected, (
        f"engine diverged from sqlite oracle{context}:\n"
        f"  engine {got}\n  sqlite {expected}"
    )


def run_differential(
    engine,
    oracle: SqliteOracle,
    events: Sequence[StreamEvent],
    batch_size: int = 1,
    query_name: str = "q",
) -> None:
    """Drive ``events`` through both sides, checking every batch boundary."""
    for start in range(0, len(events), batch_size):
        chunk = events[start : start + batch_size]
        engine.process_stream(chunk, batch_size=batch_size)
        oracle.apply_all(chunk)
        assert_rows_match(
            engine,
            oracle,
            query_name,
            context=(
                f" after {start + len(chunk)} events "
                f"(batch_size={batch_size})"
            ),
        )
