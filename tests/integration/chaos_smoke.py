"""CI chaos smoke: faults must not change what subscribers see.

Fixed-seed fault scenarios through :mod:`tests.integration.chaos_harness`:
each runs one event stream twice — fault-free and under a
:class:`~tests.integration.chaos_harness.FaultSchedule` — over identical
configurations, and requires the faulted subscriber's reassembled delta
log to be **repr-identical** to the fault-free run's, with its
accumulated rows equal to the engine's results.

The headline scenario is the acceptance criterion for the
fault-tolerance work: a subscriber killed-and-reconnected mid-stream
*while the server also loses a SIGKILLed shard worker mid-batch* (plus
a server restart-in-place and a stalled reader in the composed case).

Run ``python tests/integration/chaos_smoke.py`` (with ``PYTHONPATH=src``).
Exit status 0 = every scenario in parity.  A watchdog alarm aborts the
run if anything wedges (the CI job adds its own hard timeout as well).
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[2]
for entry in (str(_ROOT / "src"), str(_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.compiler import compile_sql  # noqa: E402
from repro.sql.catalog import Catalog  # noqa: E402
from tests.integration.chaos_harness import (  # noqa: E402
    FaultSchedule,
    run_scenario,
)

WATCHDOG_SECONDS = 420
BATCHES = 24
HAS_FORK = hasattr(os, "fork")

#: (label, shards, durable?, schedule) — every one must reach parity.
#: Worker kills need forked lanes; those scenarios are skipped (loudly)
#: on platforms without ``os.fork``.
SCENARIOS = [
    (
        "baseline fault-free",
        1,
        False,
        FaultSchedule(),
    ),
    (
        "torn client, non-durable",
        1,
        False,
        FaultSchedule(drop_client_at=7),
    ),
    (
        "stalled reader + torn client",
        1,
        False,
        FaultSchedule(drop_client_at=4, stalled_reader=True),
    ),
    (
        "server restart-in-place, durable",
        1,
        True,
        FaultSchedule(restart_server_at=11),
    ),
    (
        # The acceptance scenario: SIGKILLed shard worker mid-batch AND
        # a killed-and-reconnected subscriber, same run.
        "worker SIGKILL + torn client, durable 3 shards",
        3,
        True,
        FaultSchedule(kill_worker_at=(12, 1), drop_client_at=6),
    ),
    (
        "worker SIGKILL, supervised journal rebuild (non-durable)",
        2,
        False,
        FaultSchedule(kill_worker_at=(9, 0)),
    ),
    (
        "everything at once, durable 2 shards",
        2,
        True,
        FaultSchedule(
            kill_worker_at=(5, 0),
            drop_client_at=10,
            restart_server_at=15,
            stalled_reader=True,
        ),
    ),
]


def _program():
    return compile_sql(
        "SELECT A, sum(B) FROM R GROUP BY A",
        Catalog.from_script("CREATE STREAM R (A int, B int);"),
        name="q",
    )


def _batches():
    batches = []
    for i in range(BATCHES):
        sign = -1 if i % 5 == 4 else 1
        rows = [(i % 4, i), ((i + 1) % 4, 2 * i - 10)]
        batches.append(("R", sign, rows))
    return batches


def _watchdog(signum, frame):  # pragma: no cover - only fires on a hang
    raise SystemExit(f"chaos smoke wedged (>{WATCHDOG_SECONDS}s); aborting")


def main() -> int:
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, _watchdog)
        signal.alarm(WATCHDOG_SECONDS)
    program = _program()
    batches = _batches()
    failures = 0
    for label, shards, durable, schedule in SCENARIOS:
        needs_fork = shards > 1 and (
            schedule.kill_worker_at is not None or durable
        )
        if needs_fork and not HAS_FORK:
            print(f"SKIP  {label}: platform lacks os.fork")
            continue
        try:
            if durable:
                with tempfile.TemporaryDirectory() as oracle_dir, \
                        tempfile.TemporaryDirectory() as fault_dir:
                    report = run_scenario(
                        program, batches, shards=shards, durable=True,
                        directory=fault_dir, oracle_directory=oracle_dir,
                        schedule=schedule, seed=2009,
                    )
            else:
                report = run_scenario(
                    program, batches, shards=shards, durable=False,
                    schedule=schedule, seed=2009,
                )
        except (AssertionError, Exception) as exc:  # noqa: BLE001
            failures += 1
            print(f"FAIL  {label}: {exc}")
            continue
        print(
            f"OK    {label}: {report['deltas']} deltas repr-identical, "
            f"{report['reconnects']} reconnect(s)"
        )
    if failures:
        print(f"{failures} scenario(s) failed")
        return 1
    print("chaos smoke: all scenarios in parity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
