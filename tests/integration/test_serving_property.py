"""Serving must stream exactly what the engine computes.

Property (hypothesis, over the R/S/T strategies): for random event
streams, any batch size, shard counts 1–4 and any late-join point, a
subscriber's accumulated state — the catch-up snapshot plus every
streamed delta — equals the engine's direct
:func:`~repro.runtime.views.query_results` and a reference single
engine's results.  The bulk of the examples run at the
:class:`~repro.runtime.serving.ViewDeltaTap` level (no sockets, so
hypothesis can afford many examples); a smaller socket-level family
pins the same identity through the real server, client and framed
protocol.
"""

from collections import Counter
from functools import lru_cache

import hypothesis.strategies as st
from hypothesis import given, settings
import pytest

from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent
from repro.runtime.serving import (
    ServerThread,
    SubscriberClient,
    ViewDeltaTap,
    apply_changes,
    rows_from_snapshot,
)
from repro.sql.catalog import Catalog
from tests.strategies import events

CATALOG_DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

QUERIES = {
    "grouped": "SELECT A, sum(B) FROM R GROUP BY A",
    "join": (
        "SELECT r.B, sum(r.A * s.C) FROM R r, S s "
        "WHERE r.B = s.B GROUP BY r.B"
    ),
    # Non-linear aggregates: streamed deltas must track the
    # Finalize-maintained auxiliary caches (extremum re-derivation
    # retracts one row and asserts another).
    "minmax": "SELECT A, min(B), max(B) FROM R GROUP BY A",
    "distinct": "SELECT A, count(DISTINCT B) FROM R GROUP BY A",
}


@lru_cache(maxsize=None)
def _program(query_name: str):
    catalog = Catalog.from_script(CATALOG_DDL)
    translated = translate_sql(QUERIES[query_name], catalog, name="q")
    return compile_queries([translated], catalog)


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@settings(max_examples=20, deadline=None)
@given(
    stream=st.lists(events(), max_size=40),
    shards=st.integers(min_value=1, max_value=4),
    batch_size=st.integers(min_value=1, max_value=8),
    join_at=st.integers(min_value=0, max_value=40),
)
def test_tap_stream_equals_query_results(
    query_name, stream, shards, batch_size, join_at
):
    program = _program(query_name)
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    reference = DeltaEngine(program)
    for event in stream_events:
        reference.process(event)

    if shards == 1:
        engine = DeltaEngine(program)
    else:
        engine = ShardedEngine(program, shards=shards)
    join_at = min(join_at, len(stream_events))
    # History before the subscriber arrives...
    engine.process_stream(stream_events[:join_at], batch_size=batch_size)
    # ...is captured by its snapshot; everything after streams as deltas.
    tap = ViewDeltaTap(engine)
    _, snapshot_rows = tap.snapshot("q")
    accumulated = Counter(dict(snapshot_rows))

    def listener(lsn, batch):
        for changes in tap.on_batch(lsn, batch).values():
            apply_changes(accumulated, changes)

    engine.add_batch_listener(listener)
    engine.process_stream(stream_events[join_at:], batch_size=batch_size)
    assert accumulated == Counter(engine.results("q"))
    assert accumulated == Counter(reference.results("q"))


@settings(max_examples=10, deadline=None)
@given(
    stream=st.lists(events(), max_size=30),
    batch_size=st.integers(min_value=1, max_value=8),
    join_at=st.integers(min_value=0, max_value=30),
)
def test_subscriber_stream_equals_query_results(stream, batch_size, join_at):
    program = _program("grouped")
    stream_events = [
        StreamEvent(relation, sign, values) for relation, sign, values in stream
    ]
    reference = DeltaEngine(program)
    for event in stream_events:
        reference.process(event)

    engine = DeltaEngine(program)
    join_at = min(join_at, len(stream_events))
    with ServerThread(engine) as handle:
        handle.publish_stream(stream_events[:join_at], batch_size=batch_size)
        with SubscriberClient(handle.host, handle.port) as subscriber:
            rows = rows_from_snapshot(subscriber.subscribe("q"))
            handle.publish_stream(stream_events[join_at:], batch_size=batch_size)
            for frame in subscriber.drain_deltas("q", subscriber.ping()):
                apply_changes(rows, frame["changes"])
    assert rows == Counter(engine.results("q"))
    assert rows == Counter(reference.results("q"))
