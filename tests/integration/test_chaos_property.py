"""Randomized fault schedules must never change what subscribers see.

Property (hypothesis): for random event streams, shard counts 1–4,
durable and non-durable engines, and a random composition of faults —
SIGKILL a shard worker before batch *k*, tear the subscriber's
connection after frame *j*, restart the server after batch *n*, attach
a reader that stalls — the observing subscriber's reassembled delta log
is repr-identical to a fault-free run of the same configuration, and
its accumulated rows equal the engine's results.  The heavy lifting
lives in :mod:`tests.integration.chaos_harness`; fixed-seed scenarios
for CI run in ``chaos_smoke.py``.

Sockets, forks and reconnect backoff make every example expensive, so
the example counts are deliberately small; the fault *space* is what
hypothesis explores.
"""

import os
import tempfile
from functools import lru_cache

import hypothesis.strategies as st
from hypothesis import given, settings
import pytest

from repro.compiler import compile_sql
from repro.sql.catalog import Catalog
from tests.integration.chaos_harness import FaultSchedule, run_scenario

CATALOG_DDL = "CREATE STREAM R (A int, B int);"

HAS_FORK = hasattr(os, "fork")


@lru_cache(maxsize=None)
def _program():
    return compile_sql(
        "SELECT A, sum(B) FROM R GROUP BY A",
        Catalog.from_script(CATALOG_DDL),
        name="q",
    )


@st.composite
def _batches(draw):
    count = draw(st.integers(min_value=4, max_value=10))
    batches = []
    for _ in range(count):
        sign = draw(st.sampled_from([1, 1, 1, -1]))
        rows = [
            (draw(st.integers(0, 3)), draw(st.integers(-5, 5)))
            for _ in range(draw(st.integers(1, 3)))
        ]
        batches.append(("R", sign, rows))
    return batches


@st.composite
def _schedules(draw, n_batches: int, shards: int, durable: bool):
    schedule = FaultSchedule()
    if shards > 1 and HAS_FORK and draw(st.booleans()):
        schedule.kill_worker_at = (
            draw(st.integers(0, n_batches - 1)),
            draw(st.integers(0, shards - 1)),
        )
    if draw(st.booleans()):
        schedule.drop_client_at = draw(st.integers(0, n_batches - 1))
    if durable and draw(st.booleans()):
        schedule.restart_server_at = draw(st.integers(0, n_batches - 1))
    schedule.stalled_reader = draw(st.booleans())
    return schedule


@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_random_fault_schedule_preserves_delta_log(data):
    batches = data.draw(_batches())
    shards = data.draw(st.integers(min_value=1, max_value=4))
    if shards > 1 and not HAS_FORK:
        shards = 1
    durable = data.draw(st.booleans())
    schedule = data.draw(
        _schedules(len(batches), shards, durable)
    )
    program = _program()
    if durable:
        with tempfile.TemporaryDirectory() as oracle_dir, \
                tempfile.TemporaryDirectory() as fault_dir:
            run_scenario(
                program, batches, shards=shards, durable=True,
                directory=fault_dir, oracle_directory=oracle_dir,
                schedule=schedule, seed=7,
            )
    else:
        run_scenario(
            program, batches, shards=shards, durable=False,
            schedule=schedule, seed=7,
        )


@pytest.mark.skipif(not HAS_FORK, reason="process lanes require POSIX fork")
@settings(max_examples=4, deadline=None)
@given(
    kill_at=st.integers(min_value=0, max_value=7),
    drop_at=st.integers(min_value=0, max_value=7),
    lane=st.integers(min_value=0, max_value=2),
)
def test_composed_kill_and_drop_durable(kill_at, drop_at, lane):
    """The acceptance scenario, randomized: a SIGKILLed shard worker AND
    a torn subscriber connection in the same run, on a durable engine."""
    batches = [("R", 1, [(i % 4, i), ((i + 1) % 4, -i)]) for i in range(8)]
    schedule = FaultSchedule(
        kill_worker_at=(kill_at, lane), drop_client_at=drop_at
    )
    with tempfile.TemporaryDirectory() as oracle_dir, \
            tempfile.TemporaryDirectory() as fault_dir:
        run_scenario(
            _program(), batches, shards=3, durable=True,
            directory=fault_dir, oracle_directory=oracle_dir,
            schedule=schedule, seed=11,
        )
