"""Top-level public API tests (the README quickstart must work verbatim)."""

import repro
from repro import (
    Catalog,
    CompileOptions,
    DeltaEngine,
    compile_sql,
    delete,
    insert,
    update,
)


def test_readme_quickstart():
    catalog = Catalog.from_script(
        """
        CREATE STREAM R (A int, B int);
        CREATE STREAM S (B int, C int);
        CREATE STREAM T (C int, D int);
        """
    )
    program = compile_sql(
        "SELECT sum(r.A * t.D) FROM R r, S s, T t "
        "WHERE r.B = s.B AND s.C = t.C",
        catalog,
    )
    engine = DeltaEngine(program)
    engine.insert("R", 2, 10)
    engine.insert("S", 10, 100)
    engine.insert("T", 100, 7)
    assert engine.result_scalar() == 14
    engine.delete("R", 2, 10)
    assert engine.result_scalar() == 0


def test_version_exported():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_event_helpers_roundtrip():
    removal, addition = update("R", (1, 2), (1, 3))
    assert removal == delete("R", 1, 2)
    assert addition == insert("R", 1, 3)


def test_compile_options_flow_through():
    catalog = Catalog.from_script("CREATE STREAM R (A int, B int)")
    program = compile_sql(
        "SELECT sum(A) FROM R",
        catalog,
        options=CompileOptions(deletions=False),
    )
    engine = DeltaEngine(program)
    engine.insert("R", 5, 1)
    assert engine.result_scalar() == 5
    # Delete triggers were not generated; the event is a known-relation
    # no-op rather than an error, and the result is unchanged.
    engine.delete("R", 5, 1)
    assert engine.result_scalar() == 5
